//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! this dependency-free harness implementing the criterion API subset the
//! benches use: [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function`, [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BatchSize`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark warms up once, then runs up to
//! `sample_size` timed samples (capped so one benchmark stays under a
//! small time budget) and reports min / median / mean wall time.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How much per-iteration state `iter_batched` keeps alive (ignored by
/// this harness beyond API compatibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Per-sample timing collector handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
    budget: Duration,
}

impl Bencher {
    fn new(target_samples: usize, budget: Duration) -> Self {
        Bencher { samples: Vec::new(), target_samples, budget }
    }

    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup (untimed).
        black_box(routine());
        let started = Instant::now();
        while self.samples.len() < self.target_samples && started.elapsed() < self.budget {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` with a fresh `setup` product per sample; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let started = Instant::now();
        while self.samples.len() < self.target_samples && started.elapsed() < self.budget {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} no samples (routine never completed inside budget)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{name:<40} samples {:>3}  min {:>12?}  median {:>12?}  mean {:>12?}",
            sorted.len(),
            min,
            median,
            mean,
        );
    }

    /// Median of the recorded samples (used by benches that compute
    /// derived figures such as speedups).
    pub fn median(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        Some(sorted[sorted.len() / 2])
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Upper bound on wall time per benchmark (criterion's
    /// `measurement_time`).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size.min(20), Duration::from_secs(10));
        f(&mut b);
        b.report(&format!("{}/{name}", self.name));
        self
    }

    /// Ends the group (report-flush point in real criterion).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup { name: name.to_string(), sample_size: 10, _criterion: self }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(10, Duration::from_secs(10));
        f(&mut b);
        b.report(name);
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher::new(5, Duration::from_secs(1));
        let mut n = 0u64;
        b.iter(|| {
            n = n.wrapping_add(1);
            n
        });
        assert!(!b.samples.is_empty());
        assert!(b.median().is_some());
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut b = Bencher::new(3, Duration::from_secs(1));
        b.iter_batched(|| vec![1, 2, 3], |v| v.iter().sum::<i32>(), BatchSize::LargeInput);
        assert!(!b.samples.is_empty());
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
