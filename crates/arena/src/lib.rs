//! # ppchecker-arena
//!
//! A tiny per-app bump arena for the output-facing strings of report
//! construction.
//!
//! The checker's hot loop allocates short-lived strings in two places:
//! dedup keys while the detectors fold findings, and serialization
//! buffers while reports stream out as JSONL. Both have the same
//! lifetime — one app — and both previously paid one heap round-trip per
//! string. [`Bump`] replaces that with pointer-bump allocation into
//! chunks that are retained across [`reset`](Bump::reset), so the steady
//! state of a batch run allocates nothing:
//!
//! ```
//! use ppchecker_arena::Bump;
//!
//! let mut bump = Bump::new();
//! let a = bump.alloc_str("hello");
//! let b = bump.format_args(format_args!("{}-{}", a, 42));
//! assert_eq!(b, "hello-42");
//! bump.reset(); // drops the strings, keeps the capacity
//! assert_eq!(bump.allocated(), 0);
//! ```
//!
//! Lifetimes are the safety story: allocated `&str`s borrow the arena
//! (`&'bump str`), so the borrow checker proves no string outlives its
//! app's scope, and `reset` takes `&mut self`, which proves no allocated
//! string survives it. Internally each chunk is a `String` whose
//! capacity is fixed at creation — a chunk never reallocates, so
//! previously returned references stay valid as more strings are bumped
//! in (see the invariant note on [`Bump::alloc_str`]).

use std::cell::RefCell;
use std::fmt;

/// Smallest chunk the arena will create. Big enough that a typical app's
/// dedup keys and report fragments fit in one chunk.
const MIN_CHUNK: usize = 4 * 1024;

/// A bump allocator for strings with chunk reuse across resets.
///
/// Not `Sync`: the intended shape is one `Bump` per worker (the engine
/// threads each own a thread-local scratch), not one shared arena.
#[derive(Debug, Default)]
pub struct Bump {
    /// Filled chunks plus the currently-open chunk (last). Each chunk's
    /// capacity is fixed at creation and never grown — that is what keeps
    /// previously handed-out `&str`s stable while new strings are bumped.
    chunks: RefCell<Vec<String>>,
    /// Reusable formatting buffer for [`format_args`](Self::format_args)
    /// and [`render`](Self::render): the rendered text lands here first
    /// (a `String` can grow mid-write), then moves into a chunk.
    scratch: RefCell<String>,
}

impl Bump {
    /// An empty arena; the first allocation creates the first chunk.
    pub fn new() -> Self {
        Bump::default()
    }

    /// An arena whose first chunk has at least `bytes` of capacity.
    pub fn with_capacity(bytes: usize) -> Self {
        let bump = Bump::default();
        bump.chunks.borrow_mut().push(String::with_capacity(bytes.max(MIN_CHUNK)));
        bump
    }

    /// Copies `s` into the arena and returns the stable copy.
    pub fn alloc_str(&self, s: &str) -> &str {
        let mut chunks = self.chunks.borrow_mut();
        let needs_chunk = match chunks.last() {
            Some(open) => open.capacity() - open.len() < s.len(),
            None => true,
        };
        if needs_chunk {
            let cap = chunks.last().map_or(0, |c| c.capacity() * 2).max(s.len()).max(MIN_CHUNK);
            chunks.push(String::with_capacity(cap));
        }
        let open = chunks.last_mut().expect("an open chunk exists");
        let start = open.len();
        // Invariant: capacity was checked above, so this push_str cannot
        // reallocate the chunk's buffer.
        debug_assert!(open.capacity() - open.len() >= s.len());
        open.push_str(s);
        let slice: &str = &open[start..];
        // SAFETY: the returned reference points into a chunk's heap
        // buffer. Chunks never reallocate (capacity is pre-checked) and
        // are never dropped or truncated while the arena is shared
        // (`reset` and `trim` take `&mut self`), so the buffer outlives
        // every `&self` borrow of the arena.
        unsafe { std::mem::transmute::<&str, &str>(slice) }
    }

    /// Formats into the arena without intermediate per-call allocation
    /// (the reusable scratch buffer absorbs the unknown length), returning
    /// the stable copy: `bump.format_args(format_args!("{x}/{y}"))`.
    pub fn format_args(&self, args: fmt::Arguments<'_>) -> &str {
        if let Some(literal) = args.as_str() {
            return self.alloc_str(literal);
        }
        self.render(|out| {
            fmt::Write::write_fmt(out, args).expect("writing to a String cannot fail");
        })
    }

    /// Runs `fill` on a cleared reusable buffer and copies the result into
    /// the arena — the multi-step-serializer form of
    /// [`format_args`](Self::format_args). Reentrant `fill`s that touch
    /// the same arena fall back to a fresh buffer rather than aliasing the
    /// scratch.
    pub fn render(&self, fill: impl FnOnce(&mut String)) -> &str {
        match self.scratch.try_borrow_mut() {
            Ok(mut scratch) => {
                scratch.clear();
                fill(&mut scratch);
                self.alloc_str(&scratch)
            }
            Err(_) => {
                let mut local = String::new();
                fill(&mut local);
                self.alloc_str(&local)
            }
        }
    }

    /// Borrows the reusable scratch buffer directly, cleared, for callers
    /// that only need a transient buffer (e.g. streaming one JSONL line to
    /// a writer) and not an arena-lived string.
    pub fn with_scratch<R>(&self, f: impl FnOnce(&mut String) -> R) -> R {
        match self.scratch.try_borrow_mut() {
            Ok(mut scratch) => {
                scratch.clear();
                f(&mut scratch)
            }
            Err(_) => f(&mut String::new()),
        }
    }

    /// Bytes currently allocated (sum of chunk fill levels).
    pub fn allocated(&self) -> usize {
        self.chunks.borrow().iter().map(|c| c.len()).sum()
    }

    /// Bytes of capacity currently held across all chunks.
    pub fn capacity(&self) -> usize {
        self.chunks.borrow().iter().map(|c| c.capacity()).sum()
    }

    /// Number of chunks (a steady-state arena sits at one).
    pub fn chunk_count(&self) -> usize {
        self.chunks.borrow().len()
    }

    /// Drops every allocated string but keeps the largest chunk's
    /// capacity, so the next app's allocations are pure pointer bumps.
    /// `&mut self` statically proves no allocated `&str` survives.
    pub fn reset(&mut self) {
        let chunks = self.chunks.get_mut();
        if chunks.len() > 1 {
            // Consolidate to one chunk covering the previous total, so
            // the next identical workload never grows again: one
            // allocation on this reset, zero on every reset after.
            let total = chunks.iter().map(|c| c.capacity()).sum();
            chunks.clear();
            chunks.push(String::with_capacity(total));
        }
        if let Some(open) = chunks.last_mut() {
            open.clear();
        }
    }

    /// Releases all memory (chunks and scratch).
    pub fn trim(&mut self) {
        self.chunks.get_mut().clear();
        self.chunks.get_mut().shrink_to_fit();
        let scratch = self.scratch.get_mut();
        scratch.clear();
        scratch.shrink_to_fit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_round_trips_and_refs_stay_valid_across_growth() {
        let bump = Bump::new();
        let first = bump.alloc_str("alpha");
        // Force several growth chunks while holding the first reference.
        let mut held = Vec::new();
        for i in 0..2000 {
            held.push(bump.format_args(format_args!("entry-{i:04}")));
        }
        assert_eq!(first, "alpha");
        for (i, s) in held.iter().enumerate() {
            assert_eq!(*s, format!("entry-{i:04}"));
        }
        assert!(bump.chunk_count() >= 1);
        assert_eq!(bump.allocated(), "alpha".len() + 2000 * "entry-0000".len());
    }

    #[test]
    fn reset_retains_capacity_and_zero_allocates_after_warmup() {
        let mut bump = Bump::new();
        for i in 0..1000 {
            bump.alloc_str(&format!("warmup-{i}"));
        }
        bump.reset();
        assert_eq!(bump.allocated(), 0);
        assert_eq!(bump.chunk_count(), 1);
        let warm_capacity = bump.capacity();
        for i in 0..1000 {
            bump.alloc_str(&format!("steady-{i}"));
        }
        // The retained chunk absorbed the same workload without growing.
        assert_eq!(bump.capacity(), warm_capacity);
        assert_eq!(bump.chunk_count(), 1);
    }

    #[test]
    fn format_args_literal_fast_path() {
        let bump = Bump::new();
        assert_eq!(bump.format_args(format_args!("plain literal")), "plain literal");
    }

    #[test]
    fn render_builds_multi_step_strings() {
        let bump = Bump::new();
        let s = bump.render(|out| {
            out.push('[');
            for i in 0..3 {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&i.to_string());
            }
            out.push(']');
        });
        assert_eq!(s, "[0,1,2]");
    }

    #[test]
    fn render_is_reentrant() {
        let bump = Bump::new();
        let outer = bump.render(|out| {
            let inner = bump.render(|o| o.push_str("inner"));
            out.push_str("outer+");
            out.push_str(inner);
        });
        assert_eq!(outer, "outer+inner");
    }

    #[test]
    fn with_scratch_reuses_one_buffer() {
        let bump = Bump::new();
        bump.with_scratch(|b| b.push_str("first line that sizes the buffer"));
        let cap_after_warmup = bump.with_scratch(|b| {
            b.push_str("second");
            b.capacity()
        });
        assert!(cap_after_warmup >= "first line that sizes the buffer".len());
    }

    #[test]
    fn trim_releases_everything() {
        let mut bump = Bump::with_capacity(1 << 16);
        bump.alloc_str("x");
        bump.trim();
        assert_eq!(bump.capacity(), 0);
        assert_eq!(bump.allocated(), 0);
    }

    #[test]
    fn empty_and_large_strings() {
        let bump = Bump::new();
        assert_eq!(bump.alloc_str(""), "");
        let big = "y".repeat(3 * MIN_CHUNK);
        assert_eq!(bump.alloc_str(&big), big);
    }
}
