//! Trace-event capture and the Chrome `trace_event` JSON exporter.
//!
//! Active spans emit balanced `B`(egin)/`E`(nd) events into a per-thread
//! sink (an uncontended mutex each thread registers on first use);
//! [`drain`] collects every sink and stable-sorts by timestamp, which
//! preserves each thread's own emission order, so per-`tid` nesting in
//! the output stays balanced. [`to_chrome_json`] renders the drained
//! events in the format `about:tracing` / Perfetto load directly, and
//! [`validate`] re-parses such a file and checks it structurally — the
//! `ppchecker trace-check` subcommand and CI both run it.

use crate::json::{self, Value};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Begin or end of a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span opened (`"B"`).
    Begin,
    /// Span closed (`"E"`).
    End,
}

impl Phase {
    /// The `ph` field value.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
        }
    }
}

/// One captured event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (a stable stage name, e.g. `check.policy`).
    pub name: &'static str,
    /// Begin or end.
    pub phase: Phase,
    /// Microseconds since the trace epoch.
    pub ts_us: u64,
    /// Emitting thread (see [`crate::span::thread_tid`]).
    pub tid: u64,
    /// Optional display argument (e.g. the app package on `app.check`).
    pub arg: Option<Box<str>>,
}

/// The trace epoch: pinned the first time tracing is enabled, so every
/// event timestamp is relative to one origin.
pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

type Sink = std::sync::Arc<Mutex<Vec<TraceEvent>>>;

fn sinks() -> &'static Mutex<Vec<Sink>> {
    static SINKS: OnceLock<Mutex<Vec<Sink>>> = OnceLock::new();
    SINKS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: std::cell::OnceCell<Sink> = const { std::cell::OnceCell::new() };
}

fn with_local_sink(f: impl FnOnce(&mut Vec<TraceEvent>)) {
    LOCAL.with(|cell| {
        let sink = cell.get_or_init(|| {
            let sink: Sink = std::sync::Arc::new(Mutex::new(Vec::new()));
            sinks().lock().expect("trace sink registry").push(std::sync::Arc::clone(&sink));
            sink
        });
        f(&mut sink.lock().expect("trace sink"));
    });
}

pub(crate) fn emit_begin(name: &'static str, arg: Option<String>) {
    let ts_us = epoch().elapsed().as_micros() as u64;
    let tid = crate::span::thread_tid();
    with_local_sink(|events| {
        events.push(TraceEvent {
            name,
            phase: Phase::Begin,
            ts_us,
            tid,
            arg: arg.map(String::into_boxed_str),
        });
    });
}

pub(crate) fn emit_end(name: &'static str) {
    let ts_us = epoch().elapsed().as_micros() as u64;
    let tid = crate::span::thread_tid();
    with_local_sink(|events| {
        events.push(TraceEvent { name, phase: Phase::End, ts_us, tid, arg: None });
    });
}

/// Removes and returns every captured event, merged across all thread
/// sinks and stable-sorted by timestamp (each thread's own order — and
/// therefore per-`tid` begin/end balance — is preserved).
pub fn drain() -> Vec<TraceEvent> {
    let sinks = sinks().lock().expect("trace sink registry");
    let mut all = Vec::new();
    for sink in sinks.iter() {
        all.append(&mut sink.lock().expect("trace sink"));
    }
    drop(sinks);
    all.sort_by_key(|e| e.ts_us);
    all
}

/// Renders events as a Chrome `trace_event` JSON document, loadable in
/// `about:tracing` and [Perfetto](https://ui.perfetto.dev).
pub fn to_chrome_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"ppchecker\",\"ph\":\"{}\",\"ts\":{},\"pid\":1,\"tid\":{}",
            json::escape(e.name),
            e.phase.as_str(),
            e.ts_us,
            e.tid,
        );
        if let Some(arg) = &e.arg {
            let _ = write!(out, ",\"args\":{{\"arg\":\"{}\"}}", json::escape(arg));
        }
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

/// What [`validate`] learned about a trace file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceCheck {
    /// Total events in `traceEvents`.
    pub events: usize,
    /// Completed (balanced `B`/`E`) spans.
    pub spans: usize,
    /// Distinct span names, sorted.
    pub names: BTreeSet<String>,
    /// Deepest nesting observed on any one thread.
    pub max_depth: usize,
    /// Distinct emitting threads.
    pub threads: usize,
}

impl std::fmt::Display for TraceCheck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "trace OK: {} events, {} spans, {} threads, max depth {}",
            self.events, self.spans, self.threads, self.max_depth
        )?;
        write!(f, "stages: ")?;
        for (i, name) in self.names.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}")?;
        }
        Ok(())
    }
}

/// Structurally validates a Chrome `trace_event` JSON document: it must
/// parse, carry a `traceEvents` array of well-formed `B`/`E` events, and
/// every thread's begin/end events must balance with matching names.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn validate(text: &str) -> Result<TraceCheck, String> {
    let doc = json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .ok_or_else(|| "missing traceEvents key".to_string())?
        .as_array()
        .ok_or_else(|| "traceEvents is not an array".to_string())?;

    let mut check = TraceCheck { events: events.len(), ..TraceCheck::default() };
    let mut stacks: std::collections::BTreeMap<u64, Vec<String>> =
        std::collections::BTreeMap::new();
    for (i, event) in events.iter().enumerate() {
        let field = |key: &str| -> Result<&Value, String> {
            event.get(key).ok_or_else(|| format!("event {i}: missing {key}"))
        };
        let name =
            field("name")?.as_str().ok_or_else(|| format!("event {i}: name not a string"))?;
        let ph = field("ph")?.as_str().ok_or_else(|| format!("event {i}: ph not a string"))?;
        let ts = field("ts")?.as_f64().ok_or_else(|| format!("event {i}: ts not a number"))?;
        field("pid")?.as_f64().ok_or_else(|| format!("event {i}: pid not a number"))?;
        let tid =
            field("tid")?.as_f64().ok_or_else(|| format!("event {i}: tid not a number"))? as u64;
        if name.is_empty() {
            return Err(format!("event {i}: empty span name"));
        }
        if ts < 0.0 {
            return Err(format!("event {i}: negative timestamp"));
        }
        check.names.insert(name.to_string());
        let stack = stacks.entry(tid).or_default();
        match ph {
            "B" => {
                stack.push(name.to_string());
                check.max_depth = check.max_depth.max(stack.len());
            }
            "E" => {
                let Some(open) = stack.pop() else {
                    return Err(format!("event {i}: E \"{name}\" on tid {tid} with no open span"));
                };
                if open != name {
                    return Err(format!(
                        "event {i}: E \"{name}\" on tid {tid} closes open span \"{open}\""
                    ));
                }
                check.spans += 1;
            }
            other => return Err(format!("event {i}: unsupported phase {other:?}")),
        }
    }
    for (tid, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!("tid {tid}: {} span(s) never closed: {stack:?}", stack.len()));
        }
    }
    check.threads = stacks.len();
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn captured_spans_round_trip_through_chrome_json() {
        let _serial = crate::test_guard();
        drain(); // discard events from other tests
        crate::set_tracing(true);
        {
            let _outer = crate::span!("test.trace.outer", "com.example.app");
            let _inner = crate::span!("test.trace.inner");
        }
        crate::set_tracing(false);
        let events = drain();
        assert_eq!(events.len(), 4, "two B + two E: {events:?}");
        let json = to_chrome_json(&events);
        let check = validate(&json).expect("trace validates");
        assert_eq!(check.events, 4);
        assert_eq!(check.spans, 2);
        assert_eq!(check.max_depth, 2);
        assert!(check.names.contains("test.trace.outer"));
        assert!(check.names.contains("test.trace.inner"));
        assert!(json.contains("\"arg\":\"com.example.app\""), "arg survives: {json}");
        assert!(drain().is_empty(), "drain empties the sinks");
    }

    #[test]
    fn multi_thread_events_keep_per_tid_balance() {
        let _serial = crate::test_guard();
        drain();
        crate::set_tracing(true);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..10 {
                        let _g = crate::span!("test.trace.worker");
                    }
                });
            }
        });
        crate::set_tracing(false);
        let events = drain();
        assert_eq!(events.len(), 80);
        let check = validate(&to_chrome_json(&events)).expect("balanced across threads");
        assert_eq!(check.spans, 40);
        assert_eq!(check.threads, 4);
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate("not json").is_err());
        assert!(validate("{}").unwrap_err().contains("traceEvents"));
        assert!(validate("{\"traceEvents\":3}").unwrap_err().contains("not an array"));
        // Unbalanced: a lone B.
        let lone_b = r#"{"traceEvents":[{"name":"x","ph":"B","ts":1,"pid":1,"tid":1}]}"#;
        assert!(validate(lone_b).unwrap_err().contains("never closed"));
        // Mismatched close.
        let crossed = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1,"pid":1,"tid":1},
            {"name":"b","ph":"E","ts":2,"pid":1,"tid":1}]}"#;
        assert!(validate(crossed).unwrap_err().contains("closes open span"));
        // E with no B.
        let lone_e = r#"{"traceEvents":[{"name":"x","ph":"E","ts":1,"pid":1,"tid":1}]}"#;
        assert!(validate(lone_e).unwrap_err().contains("no open span"));
        // Missing field.
        let no_tid = r#"{"traceEvents":[{"name":"x","ph":"B","ts":1,"pid":1}]}"#;
        assert!(validate(no_tid).unwrap_err().contains("missing tid"));
    }

    #[test]
    fn validator_accepts_interleaved_threads() {
        let ok = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1,"pid":1,"tid":1},
            {"name":"a","ph":"B","ts":2,"pid":1,"tid":2},
            {"name":"a","ph":"E","ts":3,"pid":1,"tid":1},
            {"name":"a","ph":"E","ts":4,"pid":1,"tid":2}]}"#;
        let check = validate(ok).unwrap();
        assert_eq!(check.spans, 2);
        assert_eq!(check.threads, 2);
        assert_eq!(check.max_depth, 1);
        assert!(check.to_string().contains("trace OK"));
    }
}
