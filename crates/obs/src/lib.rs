//! # ppchecker-obs
//!
//! Zero-dependency observability for the PPChecker pipeline: hierarchical
//! span tracing, lock-free log2 histograms, and a Chrome
//! `trace_event`-format exporter (DESIGN.md §12).
//!
//! ## Model
//!
//! Two process-wide toggles gate everything, each one relaxed atomic load
//! on the hot path:
//!
//! - **metrics** ([`set_enabled`]): active [`span!`] guards time
//!   themselves and record their duration into a per-name [`Histogram`]
//!   in the static registry. Disabled, a span is a load + branch — no
//!   `Instant::now`, no allocation.
//! - **tracing** ([`set_tracing`]): active spans additionally emit
//!   balanced `B`/`E` [`TraceEvent`]s into per-thread sinks, drained at
//!   batch end into a Perfetto-loadable JSON file ([`trace::to_chrome_json`]).
//!
//! Spans nest through a thread-local stack, so the trace shows the full
//! hierarchy (`app.check` → `check.policy` → `nlp.depparse` …) and
//! [`span::depth`]/[`span::stack`] expose the current position.
//!
//! ## Examples
//!
//! ```
//! ppchecker_obs::set_enabled(true);
//! {
//!     let _guard = ppchecker_obs::span!("example.work");
//!     // ... the guarded stage ...
//! }
//! let snap = ppchecker_obs::histogram("example.work").snapshot();
//! assert_eq!(snap.count, 1);
//! assert!(snap.p99() >= snap.p50());
//! # ppchecker_obs::set_enabled(false);
//! ```

pub mod hist;
pub mod json;
pub mod span;
pub mod trace;

pub use hist::{Counter, Histogram, HistogramSnapshot, BUCKETS, STRIPES};
pub use span::SpanGuard;
pub use trace::{Phase, TraceCheck, TraceEvent};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);
static TRACING: AtomicBool = AtomicBool::new(false);

/// Whether span metrics are being recorded. One relaxed load.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns span metric recording on or off (process-wide).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether trace-event capture is on. One relaxed load.
#[inline(always)]
pub fn tracing() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Turns trace-event capture on or off (process-wide). Enabling pins the
/// trace epoch, so event timestamps are relative to the first enable.
pub fn set_tracing(on: bool) {
    if on {
        trace::epoch();
    }
    TRACING.store(on, Ordering::Relaxed);
}

/// The registry histogram named `name` (created on first use).
pub fn histogram(name: &'static str) -> &'static Histogram {
    hist::registry().histogram(name)
}

/// The registry counter named `name` (created on first use).
pub fn counter(name: &'static str) -> &'static Counter {
    hist::registry().counter(name)
}

/// Snapshot of every registered histogram, sorted by name.
pub fn snapshot() -> Vec<(&'static str, HistogramSnapshot)> {
    hist::registry().snapshot()
}

/// Opens a named span guard. With one argument the span's duration lands
/// in the histogram of that name; the two-argument form also attaches a
/// display argument to the trace event (evaluated only when tracing is
/// on, so the common path never formats it).
///
/// ```
/// let _g = ppchecker_obs::span!("stage.name");
/// let pkg = "com.example";
/// let _h = ppchecker_obs::span!("app.check", pkg);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name)
    };
    ($name:expr, $arg:expr) => {
        $crate::span::SpanGuard::enter_with($name, || ($arg).to_string())
    };
}

/// Serializes tests that flip the process-wide toggles, so parallel test
/// threads don't observe each other's flag changes.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    #[test]
    fn toggles_round_trip() {
        let _serial = super::test_guard();
        let was = super::enabled();
        super::set_enabled(true);
        assert!(super::enabled());
        super::set_enabled(false);
        assert!(!super::enabled());
        super::set_enabled(was);
    }
}
