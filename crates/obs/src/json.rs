//! A minimal JSON reader and string escaper, so the trace validator can
//! stay inside this zero-dependency crate.
//!
//! Supports the full JSON grammar the Chrome `trace_event` format uses:
//! objects, arrays, strings (with `\uXXXX` escapes), numbers, booleans,
//! and null. Not a general-purpose parser — numbers collapse to `f64`
//! and duplicate object keys keep the last value.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (key-sorted).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object member lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The text, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Escapes `s` for embedding inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(&mut out, s);
    out
}

/// [`escape`] writing into a caller-owned buffer — the allocation-free
/// form the JSONL serializers build on.
pub fn escape_into(out: &mut String, s: &str) {
    use std::fmt::Write;
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Parses one JSON document.
///
/// # Errors
///
/// Returns a description with a byte offset on malformed input or
/// trailing garbage.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!("unexpected {:?} at byte {}", other as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: \uD8xx must be followed by \uDCxx.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| {
                                format!("invalid \\u escape ending at byte {}", self.pos)
                            })?);
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| format!("invalid utf-8 at byte {start}"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| format!("invalid \\u escape at byte {}", self.pos))?;
        let cp = u32::from_str_radix(hex, 16)
            .map_err(|_| format!("invalid \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>().map(Value::Num).map_err(|_| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_chrome_trace_shape() {
        let doc = parse(
            r#"{"displayTimeUnit":"ms","traceEvents":[
                {"name":"a","ph":"B","ts":12,"pid":1,"tid":3,
                 "args":{"arg":"com.example"}},
                {"name":"a","ph":"E","ts":15.5,"pid":1,"tid":3}]}"#,
        )
        .unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("a"));
        assert_eq!(events[0].get("ts").unwrap().as_f64(), Some(12.0));
        assert_eq!(events[1].get("ts").unwrap().as_f64(), Some(15.5));
        assert_eq!(
            events[0].get("args").unwrap().get("arg").unwrap().as_str(),
            Some("com.example")
        );
    }

    #[test]
    fn parses_scalars_and_nesting() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Obj(BTreeMap::new()));
        assert_eq!(parse("[[1],[2,3]]").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "quote\" slash\\ newline\n tab\t unicode\u{263A} ctrl\u{1}";
        let literal = format!("\"{}\"", escape(original));
        assert_eq!(parse(&literal).unwrap().as_str(), Some(original));
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("1 2").unwrap_err().contains("trailing"));
        assert!(parse("nul").is_err());
        assert!(parse(r#""\ud800x""#).is_err());
    }
}
