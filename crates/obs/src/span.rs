//! Span-scoped timing: RAII guards over a thread-local span stack.
//!
//! [`SpanGuard::enter`] is the gated fast path — when both toggles are
//! off it costs two relaxed loads and a branch (no clock read, no
//! thread-local touch). Active guards push their name onto the thread's
//! span stack (giving the trace its hierarchy), read the clock once on
//! entry and once on drop, record the duration into the registry
//! histogram of the same name, and — when tracing — emit balanced
//! `B`/`E` events into the thread's trace sink.
//!
//! [`SpanGuard::timed`] is the ungated variant for measurements the
//! caller needs regardless of the toggles (e.g. `StageTimings`, which is
//! a view over these spans): it always times, and reports to the
//! histogram/trace only when the toggles say so.

use crate::hist::Histogram;
use crate::trace;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    static TID: Cell<u64> = const { Cell::new(0) };
}

/// A small stable id for the current thread (1-based, assigned on first
/// use). Doubles as the trace `tid` and the histogram stripe selector.
pub fn thread_tid() -> u64 {
    TID.with(|t| {
        let mut id = t.get();
        if id == 0 {
            static NEXT: AtomicU64 = AtomicU64::new(1);
            id = NEXT.fetch_add(1, Ordering::Relaxed);
            t.set(id);
        }
        id
    })
}

/// Current span nesting depth on this thread.
pub fn depth() -> usize {
    STACK.with(|s| s.borrow().len())
}

/// The current span stack on this thread, outermost first.
pub fn stack() -> Vec<&'static str> {
    STACK.with(|s| s.borrow().clone())
}

/// An RAII span: times the enclosed scope, then records and (when
/// tracing) emits on drop. Construct through [`crate::span!`],
/// [`SpanGuard::enter`], or [`SpanGuard::timed`].
#[derive(Debug)]
#[must_use = "a span measures the scope it lives in; bind it to a `_guard`"]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
    hist: Option<&'static Histogram>,
    traced: bool,
}

impl SpanGuard {
    /// The gated span: inert (no clock read) unless metrics or tracing
    /// are enabled.
    #[inline]
    pub fn enter(name: &'static str) -> SpanGuard {
        if !crate::enabled() && !crate::tracing() {
            return SpanGuard { name, start: None, hist: None, traced: false };
        }
        Self::activate(name, None)
    }

    /// The gated span with a trace argument. `arg` is only invoked when
    /// tracing is on, so the disabled path never formats it.
    #[inline]
    pub fn enter_with(name: &'static str, arg: impl FnOnce() -> String) -> SpanGuard {
        if !crate::enabled() && !crate::tracing() {
            return SpanGuard { name, start: None, hist: None, traced: false };
        }
        let arg = crate::tracing().then(arg);
        Self::activate(name, arg)
    }

    /// An always-timed span: measures even with both toggles off (for
    /// callers that consume [`finish`](Self::finish)'s duration), but
    /// records/emits only when the toggles are on.
    pub fn timed(name: &'static str) -> SpanGuard {
        Self::activate(name, None)
    }

    fn activate(name: &'static str, arg: Option<String>) -> SpanGuard {
        STACK.with(|s| s.borrow_mut().push(name));
        let traced = crate::tracing();
        let hist = crate::enabled().then(|| crate::histogram(name));
        let start = Instant::now();
        if traced {
            trace::emit_begin(name, arg);
        }
        SpanGuard { name, start: Some(start), hist, traced }
    }

    /// The span name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Ends the span now, returning its duration (zero for an inert
    /// guard). Recording happens exactly once whether a span ends by
    /// `finish` or by drop.
    pub fn finish(mut self) -> Duration {
        self.complete()
    }

    fn complete(&mut self) -> Duration {
        let Some(start) = self.start.take() else {
            return Duration::ZERO;
        };
        let dur = start.elapsed();
        if self.traced {
            trace::emit_end(self.name);
        }
        if let Some(h) = self.hist {
            h.record(dur);
        }
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            debug_assert_eq!(stack.last().copied(), Some(self.name), "unbalanced span stack");
            stack.pop();
        });
        dur
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.complete();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_reads_no_clock_and_stays_off_the_stack() {
        let _serial = crate::test_guard();
        let was = crate::enabled();
        crate::set_enabled(false);
        let g = SpanGuard::enter("test.disabled");
        assert!(g.start.is_none());
        assert_eq!(depth(), 0);
        assert_eq!(g.finish(), Duration::ZERO);
        crate::set_enabled(was);
    }

    #[test]
    fn nested_spans_stack_and_record() {
        let _serial = crate::test_guard();
        crate::set_enabled(true);
        let outer = SpanGuard::enter("test.outer");
        {
            let inner = SpanGuard::enter("test.inner");
            assert_eq!(stack(), vec!["test.outer", "test.inner"]);
            drop(inner);
        }
        assert_eq!(stack(), vec!["test.outer"]);
        let d = outer.finish();
        assert_eq!(depth(), 0);
        assert!(d > Duration::ZERO);
        assert!(crate::histogram("test.outer").snapshot().count >= 1);
        assert!(crate::histogram("test.inner").snapshot().count >= 1);
        crate::set_enabled(false);
    }

    #[test]
    fn timed_span_measures_even_when_disabled() {
        let _serial = crate::test_guard();
        let was = crate::enabled();
        crate::set_enabled(false);
        let before = crate::histogram("test.timed").snapshot().count;
        let g = SpanGuard::timed("test.timed");
        std::thread::sleep(Duration::from_millis(1));
        let d = g.finish();
        assert!(d >= Duration::from_millis(1));
        // Disabled: measured but not recorded.
        assert_eq!(crate::histogram("test.timed").snapshot().count, before);
        crate::set_enabled(was);
    }

    #[test]
    fn thread_ids_are_stable_and_distinct() {
        let here = thread_tid();
        assert_eq!(here, thread_tid());
        let other = std::thread::spawn(thread_tid).join().unwrap();
        assert_ne!(here, other);
    }
}
