//! Lock-free fixed-bucket log2 histograms, counters, and the static
//! registry they live in.
//!
//! A histogram is 64 power-of-two buckets of relaxed `AtomicU64`s,
//! striped [`STRIPES`] ways so concurrent engine workers don't contend on
//! one cache line; [`Histogram::snapshot`] merges the stripes (the
//! "cross-shard aggregation" a batch performs at run end). Quantiles are
//! read off the merged buckets as upper bucket bounds — exact to within
//! a factor of two, which is what a tail-latency table needs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};
use std::time::Duration;

/// Number of log2 buckets: bucket *b* holds values in `[2^b, 2^(b+1))`
/// nanoseconds (0 and 1 both land in bucket 0).
pub const BUCKETS: usize = 64;

/// Concurrency stripes per histogram. Each recording thread picks a
/// stripe by thread id, so saturated worker pools update disjoint
/// atomics; snapshots merge all stripes.
pub const STRIPES: usize = 8;

/// The bucket index of a nanosecond value: `floor(log2(max(v, 1)))`.
#[inline]
pub fn bucket_of(ns: u64) -> usize {
    (63 - (ns | 1).leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `b`, saturating at `u64::MAX`.
#[inline]
pub fn bucket_upper_bound(b: usize) -> u64 {
    if b >= 63 {
        u64::MAX
    } else {
        (1u64 << (b + 1)) - 1
    }
}

#[derive(Debug)]
struct Stripe {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Stripe {
    fn new() -> Self {
        Stripe {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A lock-free log2 latency histogram (nanosecond domain).
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    stripes: [Stripe; STRIPES],
}

impl Histogram {
    fn new(name: &'static str) -> Self {
        Histogram { name, stripes: std::array::from_fn(|_| Stripe::new()) }
    }

    /// The registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one duration.
    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records one nanosecond value.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        let stripe = &self.stripes[crate::span::thread_tid() as usize % STRIPES];
        stripe.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        stripe.count.fetch_add(1, Ordering::Relaxed);
        stripe.sum.fetch_add(ns, Ordering::Relaxed);
        stripe.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Merges every stripe into one snapshot (the cross-shard aggregation
    /// step). Deterministic for a fixed set of recorded values: merging
    /// is commutative and associative, so stripe/worker assignment cannot
    /// change the result.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for stripe in &self.stripes {
            let shard = HistogramSnapshot {
                buckets: std::array::from_fn(|b| stripe.buckets[b].load(Ordering::Relaxed)),
                count: stripe.count.load(Ordering::Relaxed),
                sum: stripe.sum.load(Ordering::Relaxed),
                max: stripe.max.load(Ordering::Relaxed),
            };
            out.merge(&shard);
        }
        out
    }
}

/// An immutable view of a histogram (or a merge/delta of several).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts.
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed nanoseconds.
    pub sum: u64,
    /// Largest observed value. Lifetime high-water mark: a delta keeps
    /// the later snapshot's max (per-interval maxima are not recoverable
    /// from monotonic counters).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { buckets: [0; BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl HistogramSnapshot {
    /// Merges `other` in (bucket-wise sum, max of maxes). Commutative and
    /// associative, so any merge order over a set of shards produces the
    /// identical snapshot.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The growth since `earlier` (bucket-wise saturating difference).
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = *self;
        for (b, e) in out.buckets.iter_mut().zip(earlier.buckets.iter()) {
            *b = b.saturating_sub(*e);
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum = self.sum.saturating_sub(earlier.sum);
        out
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in nanoseconds: the upper bound
    /// of the bucket holding the rank-`ceil(q·count)` observation,
    /// clamped to the observed max.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(b).min(self.max.max(1));
            }
        }
        self.max
    }

    /// Median latency.
    pub fn p50(&self) -> Duration {
        Duration::from_nanos(self.quantile_ns(0.50))
    }

    /// 90th-percentile latency.
    pub fn p90(&self) -> Duration {
        Duration::from_nanos(self.quantile_ns(0.90))
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> Duration {
        Duration::from_nanos(self.quantile_ns(0.99))
    }

    /// Largest observed latency.
    pub fn max_duration(&self) -> Duration {
        Duration::from_nanos(self.max)
    }

    /// Sum of all observed latency.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.sum)
    }

    /// Mean latency (zero when empty).
    pub fn mean(&self) -> Duration {
        Duration::from_nanos(self.sum.checked_div(self.count).unwrap_or(0))
    }
}

/// A relaxed monotonically-increasing counter.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// The registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// The static metric registry: histograms and counters by name, created
/// on first use and immortal (`Box::leak`, bounded by the fixed set of
/// instrumented stage names).
#[derive(Debug, Default)]
pub struct Registry {
    hists: RwLock<Vec<&'static Histogram>>,
    counters: RwLock<Vec<&'static Counter>>,
}

impl Registry {
    /// Get-or-create the histogram named `name`.
    pub fn histogram(&self, name: &'static str) -> &'static Histogram {
        if let Some(h) =
            self.hists.read().expect("obs registry lock").iter().find(|h| h.name == name)
        {
            return h;
        }
        let mut w = self.hists.write().expect("obs registry lock");
        if let Some(h) = w.iter().find(|h| h.name == name) {
            return h;
        }
        let h: &'static Histogram = Box::leak(Box::new(Histogram::new(name)));
        w.push(h);
        h
    }

    /// Get-or-create the counter named `name`.
    pub fn counter(&self, name: &'static str) -> &'static Counter {
        if let Some(c) =
            self.counters.read().expect("obs registry lock").iter().find(|c| c.name == name)
        {
            return c;
        }
        let mut w = self.counters.write().expect("obs registry lock");
        if let Some(c) = w.iter().find(|c| c.name == name) {
            return c;
        }
        let c: &'static Counter = Box::leak(Box::new(Counter { name, value: AtomicU64::new(0) }));
        w.push(c);
        c
    }

    /// Snapshot of every histogram, sorted by name for deterministic
    /// iteration.
    pub fn snapshot(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        let mut out: Vec<(&'static str, HistogramSnapshot)> = self
            .hists
            .read()
            .expect("obs registry lock")
            .iter()
            .map(|h| (h.name, h.snapshot()))
            .collect();
        out.sort_unstable_by_key(|(name, _)| *name);
        out
    }

    /// Snapshot of every counter, sorted by name.
    pub fn counters_snapshot(&self) -> Vec<(&'static str, u64)> {
        let mut out: Vec<(&'static str, u64)> = self
            .counters
            .read()
            .expect("obs registry lock")
            .iter()
            .map(|c| (c.name, c.get()))
            .collect();
        out.sort_unstable_by_key(|(name, _)| *name);
        out
    }
}

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(7), 2);
        assert_eq!(bucket_of(8), 3);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
        // Every boundary: 2^b is the first value of bucket b, 2^b - 1 the
        // last of bucket b-1.
        for b in 1..63 {
            assert_eq!(bucket_of(1u64 << b), b as usize, "lower edge of bucket {b}");
            assert_eq!(bucket_of((1u64 << b) - 1), b as usize - 1, "upper edge below bucket {b}");
        }
        assert_eq!(bucket_upper_bound(0), 1);
        assert_eq!(bucket_upper_bound(9), 1023);
        assert_eq!(bucket_upper_bound(63), u64::MAX);
    }

    #[test]
    fn quantiles_read_off_merged_buckets() {
        let h = Histogram::new("test.quantiles");
        // 90 fast (≈100ns), 9 medium (≈10µs), 1 slow (≈1ms).
        for _ in 0..90 {
            h.record_ns(100);
        }
        for _ in 0..9 {
            h.record_ns(10_000);
        }
        h.record_ns(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max, 1_000_000);
        assert!(
            s.quantile_ns(0.50) < 256,
            "p50 {} should sit in the fast bucket",
            s.quantile_ns(0.5)
        );
        assert!((4_096..=16_384).contains(&s.quantile_ns(0.91)), "p91 {}", s.quantile_ns(0.91));
        assert_eq!(s.quantile_ns(1.0), 1_000_000, "p100 clamps to the observed max");
        assert!(s.mean() >= Duration::from_nanos(100));
        assert_eq!(s.total(), Duration::from_nanos(90 * 100 + 9 * 10_000 + 1_000_000));
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::new("test.empty").snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile_ns(0.99), 0);
        assert_eq!(s.mean(), Duration::ZERO);
    }

    #[test]
    fn cross_shard_merge_is_order_independent() {
        // Simulate per-worker shards with distinct value mixes, then merge
        // in two different orders: identical snapshots either way.
        let shards: Vec<HistogramSnapshot> = (0..6)
            .map(|w| {
                let h = Histogram::new("test.merge");
                for i in 0..50u64 {
                    h.record_ns((w as u64 + 1) * 100 + i * 37);
                }
                h.snapshot()
            })
            .collect();
        let mut forward = HistogramSnapshot::default();
        for s in &shards {
            forward.merge(s);
        }
        let mut reverse = HistogramSnapshot::default();
        for s in shards.iter().rev() {
            reverse.merge(s);
        }
        assert_eq!(forward, reverse);
        assert_eq!(forward.count, 300);
        for q in [0.5, 0.9, 0.99, 1.0] {
            assert_eq!(forward.quantile_ns(q), reverse.quantile_ns(q));
        }
    }

    #[test]
    fn delta_since_subtracts_bucketwise() {
        let h = Histogram::new("test.delta");
        h.record_ns(100);
        h.record_ns(200);
        let before = h.snapshot();
        h.record_ns(100_000);
        let delta = h.snapshot().delta_since(&before);
        assert_eq!(delta.count, 1);
        assert_eq!(delta.sum, 100_000);
        assert_eq!(delta.buckets[bucket_of(100_000)], 1);
        assert_eq!(delta.buckets[bucket_of(100)], 0);
    }

    #[test]
    fn striped_recording_snapshots_consistently() {
        let h: &'static Histogram = Box::leak(Box::new(Histogram::new("test.striped")));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..1000u64 {
                        h.record_ns(i);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, 4000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 4000);
        assert_eq!(s.max, 999);
    }

    #[test]
    fn registry_returns_same_instance_per_name() {
        let a = registry().histogram("test.registry.same");
        let b = registry().histogram("test.registry.same");
        assert!(std::ptr::eq(a, b));
        let c = registry().counter("test.registry.counter");
        c.inc();
        c.add(2);
        assert_eq!(registry().counter("test.registry.counter").get(), 3);
        let names: Vec<&str> = registry().snapshot().iter().map(|(n, _)| *n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "snapshot is name-sorted");
    }
}
