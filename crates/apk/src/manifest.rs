//! The `AndroidManifest.xml` model: package name, requested permissions,
//! and declared components.

use std::fmt;

/// Android permissions relevant to PPChecker. The paper's Table III and the
//  PScout-style URI→permission map both key on these.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Permission {
    /// `android.permission.ACCESS_COARSE_LOCATION`
    AccessCoarseLocation,
    /// `android.permission.ACCESS_FINE_LOCATION`
    AccessFineLocation,
    /// `android.permission.CAMERA`
    Camera,
    /// `android.permission.GET_ACCOUNTS`
    GetAccounts,
    /// `android.permission.READ_CALENDAR`
    ReadCalendar,
    /// `android.permission.READ_CONTACTS`
    ReadContacts,
    /// `android.permission.WRITE_CONTACTS`
    WriteContacts,
    /// `android.permission.READ_PHONE_STATE`
    ReadPhoneState,
    /// `android.permission.RECORD_AUDIO`
    RecordAudio,
    /// `android.permission.READ_SMS`
    ReadSms,
    /// `android.permission.RECEIVE_SMS`
    ReceiveSms,
    /// `android.permission.SEND_SMS`
    SendSms,
    /// `android.permission.READ_CALL_LOG`
    ReadCallLog,
    /// `android.permission.INTERNET`
    Internet,
    /// `android.permission.ACCESS_NETWORK_STATE`
    AccessNetworkState,
    /// `android.permission.ACCESS_WIFI_STATE`
    AccessWifiState,
    /// `android.permission.BLUETOOTH`
    Bluetooth,
    /// `android.permission.WRITE_EXTERNAL_STORAGE`
    WriteExternalStorage,
    /// `android.permission.GET_TASKS`
    GetTasks,
    /// `android.permission.READ_HISTORY_BOOKMARKS`
    ReadHistoryBookmarks,
    /// Any other permission, by its full string name.
    Custom(String),
}

impl Permission {
    /// The full `android.permission.*` string.
    pub fn qualified_name(&self) -> String {
        match self {
            Permission::Custom(s) => s.clone(),
            other => format!("android.permission.{}", other.short_name()),
        }
    }

    /// The short constant name, e.g. `ACCESS_FINE_LOCATION`.
    pub fn short_name(&self) -> &str {
        match self {
            Permission::AccessCoarseLocation => "ACCESS_COARSE_LOCATION",
            Permission::AccessFineLocation => "ACCESS_FINE_LOCATION",
            Permission::Camera => "CAMERA",
            Permission::GetAccounts => "GET_ACCOUNTS",
            Permission::ReadCalendar => "READ_CALENDAR",
            Permission::ReadContacts => "READ_CONTACTS",
            Permission::WriteContacts => "WRITE_CONTACTS",
            Permission::ReadPhoneState => "READ_PHONE_STATE",
            Permission::RecordAudio => "RECORD_AUDIO",
            Permission::ReadSms => "READ_SMS",
            Permission::ReceiveSms => "RECEIVE_SMS",
            Permission::SendSms => "SEND_SMS",
            Permission::ReadCallLog => "READ_CALL_LOG",
            Permission::Internet => "INTERNET",
            Permission::AccessNetworkState => "ACCESS_NETWORK_STATE",
            Permission::AccessWifiState => "ACCESS_WIFI_STATE",
            Permission::Bluetooth => "BLUETOOTH",
            Permission::WriteExternalStorage => "WRITE_EXTERNAL_STORAGE",
            Permission::GetTasks => "GET_TASKS",
            Permission::ReadHistoryBookmarks => "READ_HISTORY_BOOKMARKS",
            Permission::Custom(s) => s,
        }
    }

    /// Parses a permission from its short or qualified name.
    pub fn from_name(name: &str) -> Permission {
        let short = name.strip_prefix("android.permission.").unwrap_or(name);
        match short {
            "ACCESS_COARSE_LOCATION" => Permission::AccessCoarseLocation,
            "ACCESS_FINE_LOCATION" => Permission::AccessFineLocation,
            "CAMERA" => Permission::Camera,
            "GET_ACCOUNTS" => Permission::GetAccounts,
            "READ_CALENDAR" => Permission::ReadCalendar,
            "READ_CONTACTS" => Permission::ReadContacts,
            "WRITE_CONTACTS" => Permission::WriteContacts,
            "READ_PHONE_STATE" => Permission::ReadPhoneState,
            "RECORD_AUDIO" => Permission::RecordAudio,
            "READ_SMS" => Permission::ReadSms,
            "RECEIVE_SMS" => Permission::ReceiveSms,
            "SEND_SMS" => Permission::SendSms,
            "READ_CALL_LOG" => Permission::ReadCallLog,
            "INTERNET" => Permission::Internet,
            "ACCESS_NETWORK_STATE" => Permission::AccessNetworkState,
            "ACCESS_WIFI_STATE" => Permission::AccessWifiState,
            "BLUETOOTH" => Permission::Bluetooth,
            "WRITE_EXTERNAL_STORAGE" => Permission::WriteExternalStorage,
            "GET_TASKS" => Permission::GetTasks,
            "READ_HISTORY_BOOKMARKS" => Permission::ReadHistoryBookmarks,
            other => Permission::Custom(other.to_string()),
        }
    }
}

impl fmt::Display for Permission {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.qualified_name())
    }
}

/// Kinds of Android components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComponentKind {
    /// An `Activity`.
    Activity,
    /// A `Service`.
    Service,
    /// A `BroadcastReceiver`.
    Receiver,
    /// A `ContentProvider`.
    Provider,
}

/// A declared component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Component {
    /// Component kind.
    pub kind: ComponentKind,
    /// Fully qualified class name.
    pub class_name: String,
    /// Whether the component is exported.
    pub exported: bool,
    /// `true` for the launcher activity.
    pub main: bool,
}

/// The parsed manifest of an app.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Application package name, e.g. `com.example.app`.
    pub package: String,
    /// Requested permissions.
    pub permissions: Vec<Permission>,
    /// Declared components.
    pub components: Vec<Component>,
}

impl Manifest {
    /// Creates an empty manifest for `package`.
    pub fn new(package: &str) -> Self {
        Manifest { package: package.to_string(), permissions: Vec::new(), components: Vec::new() }
    }

    /// Adds a permission (deduplicated).
    pub fn add_permission(&mut self, p: Permission) -> &mut Self {
        if !self.permissions.contains(&p) {
            self.permissions.push(p);
        }
        self
    }

    /// Adds a component.
    pub fn add_component(
        &mut self,
        kind: ComponentKind,
        class_name: &str,
        main: bool,
    ) -> &mut Self {
        self.components.push(Component {
            kind,
            class_name: class_name.to_string(),
            exported: main,
            main,
        });
        self
    }

    /// Returns `true` if the app requests `p`.
    pub fn has_permission(&self, p: &Permission) -> bool {
        self.permissions.contains(p)
    }

    /// The launcher activity, if declared.
    pub fn main_activity(&self) -> Option<&Component> {
        self.components.iter().find(|c| c.main && c.kind == ComponentKind::Activity)
    }
}

/// Error parsing the textual manifest format (see [`Manifest::from_text`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseManifestError {
    /// 1-based line number (0 when the document as a whole is invalid).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "manifest line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseManifestError {}

impl Manifest {
    /// Parses the line-based manifest text format:
    ///
    /// ```text
    /// package com.example.weather
    /// permission ACCESS_FINE_LOCATION
    /// activity com.example.weather.Main main
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`ParseManifestError`] on unknown directives or a missing
    /// `package` line.
    pub fn from_text(text: &str) -> Result<Manifest, ParseManifestError> {
        let mut manifest: Option<Manifest> = None;
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = ln + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |message: &str| ParseManifestError { line: lineno, message: message.into() };
            let mut parts = line.split_whitespace();
            let directive = parts.next().unwrap_or_default();
            match directive {
                "package" => {
                    let name = parts.next().ok_or_else(|| err("missing package name"))?;
                    manifest = Some(Manifest::new(name));
                }
                "permission" => {
                    let name = parts.next().ok_or_else(|| err("missing permission name"))?;
                    manifest
                        .as_mut()
                        .ok_or_else(|| err("'permission' before 'package'"))?
                        .add_permission(Permission::from_name(name));
                }
                "activity" | "service" | "receiver" | "provider" => {
                    let class = parts.next().ok_or_else(|| err("missing class name"))?;
                    let main = parts.next() == Some("main");
                    let kind = match directive {
                        "activity" => ComponentKind::Activity,
                        "service" => ComponentKind::Service,
                        "receiver" => ComponentKind::Receiver,
                        _ => ComponentKind::Provider,
                    };
                    manifest
                        .as_mut()
                        .ok_or_else(|| err("component before 'package'"))?
                        .add_component(kind, class, main);
                }
                other => return Err(err(&format!("unknown directive '{other}'"))),
            }
        }
        manifest.ok_or(ParseManifestError { line: 0, message: "no 'package' line".into() })
    }

    /// Renders the manifest into the text format parsed by
    /// [`Manifest::from_text`].
    pub fn to_text(&self) -> String {
        let mut out = format!("package {}\n", self.package);
        for p in &self.permissions {
            out.push_str(&format!("permission {}\n", p.short_name()));
        }
        for c in &self.components {
            let kind = match c.kind {
                ComponentKind::Activity => "activity",
                ComponentKind::Service => "service",
                ComponentKind::Receiver => "receiver",
                ComponentKind::Provider => "provider",
            };
            out.push_str(&format!(
                "{kind} {}{}\n",
                c.class_name,
                if c.main { " main" } else { "" }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permission_name_round_trip() {
        for p in [
            Permission::AccessFineLocation,
            Permission::ReadContacts,
            Permission::Camera,
            Permission::Custom("VIBRATE".to_string()),
        ] {
            assert_eq!(Permission::from_name(&p.qualified_name()), p);
        }
    }

    #[test]
    fn qualified_name_has_android_prefix() {
        assert_eq!(Permission::ReadSms.qualified_name(), "android.permission.READ_SMS");
    }

    #[test]
    fn manifest_dedupes_permissions() {
        let mut m = Manifest::new("com.example");
        m.add_permission(Permission::Camera);
        m.add_permission(Permission::Camera);
        assert_eq!(m.permissions.len(), 1);
    }

    #[test]
    fn text_format_round_trips() {
        let mut m = Manifest::new("com.example");
        m.add_permission(Permission::Camera);
        m.add_component(ComponentKind::Activity, "com.example.Main", true);
        m.add_component(ComponentKind::Provider, "com.example.Data", false);
        let again = Manifest::from_text(&m.to_text()).unwrap();
        assert_eq!(m, again);
    }

    #[test]
    fn main_activity_lookup() {
        let mut m = Manifest::new("com.example");
        m.add_component(ComponentKind::Service, "com.example.Sync", false);
        m.add_component(ComponentKind::Activity, "com.example.Main", true);
        assert_eq!(m.main_activity().unwrap().class_name, "com.example.Main");
    }
}
