//! # ppchecker-apk
//!
//! A simulated Android APK substrate for the PPChecker reproduction: the
//! `AndroidManifest.xml` model ([`manifest`]), a register-based dex-like
//! intermediate representation ([`dex`]) with a fluent builder, and a
//! packer/unpacker ([`packer`]) standing in for DexHunter.
//!
//! The paper analyzes real APKs; this crate provides an equivalent input
//! format that the static-analysis module consumes, expressive enough for
//! every phenomenon the paper's analysis observes (sensitive API calls,
//! content-provider URIs, implicit callbacks, taint flows, packed dex).
//!
//! # Examples
//!
//! ```
//! use ppchecker_apk::{Apk, Dex, Manifest, Permission, ComponentKind};
//!
//! let mut manifest = Manifest::new("com.example.weather");
//! manifest.add_permission(Permission::AccessFineLocation);
//! manifest.add_component(ComponentKind::Activity, "com.example.weather.Main", true);
//!
//! let dex = Dex::builder()
//!     .class("com.example.weather.Main", |c| {
//!         c.extends("android.app.Activity");
//!         c.method("onCreate", 1, |m| {
//!             m.invoke_virtual("android.location.Location", "getLatitude", &[0], Some(1));
//!         });
//!     })
//!     .build();
//!
//! let apk = Apk::new(manifest, dex);
//! assert_eq!(apk.manifest.package, "com.example.weather");
//! ```

pub mod apk;
pub mod dex;
pub mod hash;
pub mod info;
pub mod manifest;
pub mod packer;

pub use apk::{Apk, Payload};
pub use dex::{
    stable_hash_classes, Class, Dex, DexBuilder, Insn, InvokeKind, Method, MethodBuilder,
    MethodRef, Reg,
};
pub use hash::{FnvBuild, FnvHasher, FnvMap, FnvSet};
pub use info::PrivateInfo;
pub use manifest::{Component, ComponentKind, Manifest, ParseManifestError, Permission};
pub use packer::ParseDexError;
