//! A fast, non-cryptographic hasher for analysis-internal maps.
//!
//! The pipeline's hottest maps are keyed by short class/method name
//! strings (or small integers) and probed once per bytecode instruction.
//! `std`'s default SipHash pays a per-probe finalization cost that
//! dominates at those key sizes; this FNV-style xor-multiply over 8-byte
//! chunks hashes a typical qualified class name in a handful of cycles.
//!
//! These maps are process-internal (never fed attacker-chosen keys in an
//! adversarial setting the analysis cares about), so SipHash's DoS
//! resistance buys nothing here.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a-flavoured [`Hasher`] folding 8-byte little-endian chunks.
#[derive(Debug, Clone, Copy)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        const PRIME: u64 = 0x100_0000_01b3;
        let mut h = self.0;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            h = (h ^ u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")))
                .wrapping_mul(PRIME);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            h = (h ^ u64::from_le_bytes(buf)).wrapping_mul(PRIME);
        }
        self.0 = h;
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x100_0000_01b3);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Multiplicative mixing under-diffuses high bits into low ones;
        // fold them back so hashbrown's bucket index and control tag both
        // see well-mixed bits.
        let h = self.0;
        h ^ (h >> 32)
    }
}

/// `BuildHasher` for [`FnvHasher`].
pub type FnvBuild = BuildHasherDefault<FnvHasher>;

/// `HashMap` keyed with [`FnvHasher`].
pub type FnvMap<K, V> = HashMap<K, V, FnvBuild>;

/// `HashSet` keyed with [`FnvHasher`].
pub type FnvSet<T> = HashSet<T, FnvBuild>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip_with_string_keys() {
        let mut m: FnvMap<String, u32> = FnvMap::default();
        for i in 0..1000u32 {
            m.insert(format!("com.example.pkg{i}.Class{i}"), i);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&format!("com.example.pkg{i}.Class{i}")), Some(&i));
        }
    }

    #[test]
    fn distinct_short_strings_hash_apart() {
        let mut seen = std::collections::HashSet::new();
        for s in ["a", "b", "ab", "ba", "", "a.b", "b.a", "android.util.Log"] {
            let mut h = FnvHasher::default();
            h.write(s.as_bytes());
            assert!(seen.insert(h.finish()), "collision for {s:?}");
        }
    }
}
