//! The private-information taxonomy shared by every PPChecker module.
//!
//! The paper maps sensitive APIs, content-provider URIs, permissions, and
//! policy phrases onto a common set of private-information categories
//! ("device ID, IP address, cookie, location, account, contact, calendar,
//! telephone number, camera, audio, and app list" plus SMS and friends).

use crate::manifest::Permission;
use std::fmt;

/// A category of private information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PrivateInfo {
    /// Geographic location (GPS, cell, last-known).
    Location,
    /// Device identifiers (IMEI, Android ID, serial).
    DeviceId,
    /// The user's telephone number.
    PhoneNumber,
    /// IP / network addresses.
    IpAddress,
    /// Browser or HTTP cookies.
    Cookie,
    /// Device accounts (Google account, email accounts).
    Account,
    /// The contact list / address book.
    Contact,
    /// Calendar events.
    Calendar,
    /// Camera images.
    Camera,
    /// Microphone audio.
    Audio,
    /// The list of installed or running apps.
    AppList,
    /// SMS / text messages.
    Sms,
    /// The call log.
    CallLog,
    /// Web browsing history and bookmarks.
    BrowsingHistory,
    /// Hardware sensor data.
    Sensor,
    /// Bluetooth identifiers and paired devices.
    Bluetooth,
    /// Mobile carrier / SIM operator details.
    Carrier,
    /// Clipboard contents.
    Clipboard,
    /// Email address.
    Email,
    /// Personal name.
    Name,
    /// Date of birth.
    Birthday,
}

impl PrivateInfo {
    /// All categories, in a stable order.
    pub const ALL: &'static [PrivateInfo] = &[
        PrivateInfo::Location,
        PrivateInfo::DeviceId,
        PrivateInfo::PhoneNumber,
        PrivateInfo::IpAddress,
        PrivateInfo::Cookie,
        PrivateInfo::Account,
        PrivateInfo::Contact,
        PrivateInfo::Calendar,
        PrivateInfo::Camera,
        PrivateInfo::Audio,
        PrivateInfo::AppList,
        PrivateInfo::Sms,
        PrivateInfo::CallLog,
        PrivateInfo::BrowsingHistory,
        PrivateInfo::Sensor,
        PrivateInfo::Bluetooth,
        PrivateInfo::Carrier,
        PrivateInfo::Clipboard,
        PrivateInfo::Email,
        PrivateInfo::Name,
        PrivateInfo::Birthday,
    ];

    /// The canonical English phrase used when comparing against policy text
    /// with ESA.
    pub fn canonical_phrase(&self) -> &'static str {
        match self {
            PrivateInfo::Location => "location",
            PrivateInfo::DeviceId => "device id",
            PrivateInfo::PhoneNumber => "phone number",
            PrivateInfo::IpAddress => "ip address",
            PrivateInfo::Cookie => "cookie",
            PrivateInfo::Account => "account",
            PrivateInfo::Contact => "contact",
            PrivateInfo::Calendar => "calendar",
            PrivateInfo::Camera => "camera",
            PrivateInfo::Audio => "audio",
            PrivateInfo::AppList => "app list",
            PrivateInfo::Sms => "sms",
            PrivateInfo::CallLog => "call log",
            PrivateInfo::BrowsingHistory => "browsing history",
            PrivateInfo::Sensor => "sensor",
            PrivateInfo::Bluetooth => "bluetooth",
            PrivateInfo::Carrier => "carrier",
            PrivateInfo::Clipboard => "clipboard",
            PrivateInfo::Email => "email address",
            PrivateInfo::Name => "name",
            PrivateInfo::Birthday => "birthday",
        }
    }

    /// The private information implied by a permission (the paper maps
    /// permissions to information "by analyzing the official document",
    /// e.g. `ACCESS_FINE_LOCATION` → location/latitude/longitude).
    pub fn from_permission(p: &Permission) -> &'static [PrivateInfo] {
        match p {
            Permission::AccessCoarseLocation | Permission::AccessFineLocation => {
                &[PrivateInfo::Location]
            }
            Permission::Camera => &[PrivateInfo::Camera],
            Permission::GetAccounts => &[PrivateInfo::Account],
            Permission::ReadCalendar => &[PrivateInfo::Calendar],
            Permission::ReadContacts | Permission::WriteContacts => &[PrivateInfo::Contact],
            Permission::ReadPhoneState => &[PrivateInfo::DeviceId, PrivateInfo::PhoneNumber],
            Permission::RecordAudio => &[PrivateInfo::Audio],
            Permission::ReadSms | Permission::ReceiveSms | Permission::SendSms => {
                &[PrivateInfo::Sms]
            }
            Permission::ReadCallLog => &[PrivateInfo::CallLog],
            Permission::GetTasks => &[PrivateInfo::AppList],
            Permission::AccessWifiState => &[PrivateInfo::IpAddress],
            Permission::ReadHistoryBookmarks => &[PrivateInfo::BrowsingHistory],
            Permission::Bluetooth => &[PrivateInfo::Bluetooth],
            _ => &[],
        }
    }

    /// The permission guarding this information, if any. Algorithm 2 only
    /// reports code-detected incompleteness when the app actually requests
    /// the guarding permission.
    pub fn required_permission(&self) -> Option<Permission> {
        match self {
            PrivateInfo::Location => Some(Permission::AccessFineLocation),
            PrivateInfo::DeviceId | PrivateInfo::PhoneNumber | PrivateInfo::Carrier => {
                Some(Permission::ReadPhoneState)
            }
            PrivateInfo::Account => Some(Permission::GetAccounts),
            PrivateInfo::Contact => Some(Permission::ReadContacts),
            PrivateInfo::Calendar => Some(Permission::ReadCalendar),
            PrivateInfo::Camera => Some(Permission::Camera),
            PrivateInfo::Audio => Some(Permission::RecordAudio),
            PrivateInfo::AppList => Some(Permission::GetTasks),
            PrivateInfo::Sms => Some(Permission::ReadSms),
            PrivateInfo::CallLog => Some(Permission::ReadCallLog),
            PrivateInfo::BrowsingHistory => Some(Permission::ReadHistoryBookmarks),
            PrivateInfo::Bluetooth => Some(Permission::Bluetooth),
            PrivateInfo::IpAddress => Some(Permission::AccessWifiState),
            _ => None,
        }
    }
}

impl fmt::Display for PrivateInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.canonical_phrase())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permission_to_info_mapping() {
        assert_eq!(
            PrivateInfo::from_permission(&Permission::AccessFineLocation),
            &[PrivateInfo::Location]
        );
        assert!(PrivateInfo::from_permission(&Permission::ReadPhoneState)
            .contains(&PrivateInfo::DeviceId));
        assert!(PrivateInfo::from_permission(&Permission::Internet).is_empty());
    }

    #[test]
    fn required_permission_round_trips_for_guarded_info() {
        let p = PrivateInfo::Contact.required_permission().unwrap();
        assert!(PrivateInfo::from_permission(&p).contains(&PrivateInfo::Contact));
    }

    #[test]
    fn canonical_phrases_unique() {
        let mut phrases: Vec<&str> =
            PrivateInfo::ALL.iter().map(|i| i.canonical_phrase()).collect();
        phrases.sort_unstable();
        phrases.dedup();
        assert_eq!(phrases.len(), PrivateInfo::ALL.len());
    }

    #[test]
    fn display_uses_canonical_phrase() {
        assert_eq!(PrivateInfo::Location.to_string(), "location");
    }
}
