//! The APK container: manifest + (possibly packed) dex payload.

use crate::dex::Dex;
use crate::manifest::Manifest;
use crate::packer::{self, ParseDexError};
use std::fmt;

/// The dex payload of an APK: plain or hidden by a packer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// An ordinary, directly-readable dex.
    Plain(Dex),
    /// A packed dex blob that must be recovered first (cf. DexHunter).
    Packed(Vec<u8>),
}

/// A simulated APK file.
///
/// # Examples
///
/// ```
/// use ppchecker_apk::{Apk, Dex, Manifest};
///
/// let manifest = Manifest::new("com.example.app");
/// let dex = Dex::builder().build();
/// let apk = Apk::new(manifest, dex);
/// assert!(!apk.is_packed());
/// assert!(apk.dex().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Apk {
    /// The parsed `AndroidManifest.xml`.
    pub manifest: Manifest,
    payload: Payload,
}

impl Apk {
    /// Creates an APK with a plain dex.
    pub fn new(manifest: Manifest, dex: Dex) -> Self {
        Apk { manifest, payload: Payload::Plain(dex) }
    }

    /// Creates an APK whose dex is packed with `key` (as a packer would).
    pub fn new_packed(manifest: Manifest, dex: &Dex, key: u8) -> Self {
        Apk { manifest, payload: Payload::Packed(packer::pack(dex, key)) }
    }

    /// Creates an APK from a raw packed-dex blob *without* validating it.
    ///
    /// This is how on-disk `.pkdx` payloads enter the pipeline: the blob
    /// may be truncated or corrupt, in which case [`Apk::dex`] (and any
    /// analysis over it) reports the recovery failure. Batch runtimes
    /// rely on this to turn one bad app into one error record instead of
    /// a load-time abort.
    pub fn from_packed_blob(manifest: Manifest, blob: Vec<u8>) -> Self {
        Apk { manifest, payload: Payload::Packed(blob) }
    }

    /// Returns `true` if the dex is packed.
    pub fn is_packed(&self) -> bool {
        matches!(self.payload, Payload::Packed(_))
    }

    /// Returns the dex, recovering it with the unpacker if necessary.
    ///
    /// This mirrors the paper's flow: "If the app is packed, we use our
    /// unpacking tool DexHunter to recover the dex file."
    ///
    /// # Errors
    ///
    /// Returns [`ParseDexError`] if a packed payload cannot be recovered.
    pub fn dex(&self) -> Result<Dex, ParseDexError> {
        match &self.payload {
            Payload::Plain(d) => Ok(d.clone()),
            Payload::Packed(blob) => packer::unpack(blob),
        }
    }

    /// Borrows the plain dex without unpacking; `None` when packed.
    pub fn plain_dex(&self) -> Option<&Dex> {
        match &self.payload {
            Payload::Plain(d) => Some(d),
            Payload::Packed(_) => None,
        }
    }

    /// A content hash of the whole APK — manifest text plus dex payload —
    /// stable across runs and platforms. This is the artifact store's
    /// per-app invalidation key: any change to permissions, components,
    /// or bytecode produces a different hash, so a stored report is only
    /// replayed for a byte-identical app.
    pub fn content_hash(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = crate::hash::FnvHasher::default();
        let manifest = self.manifest.to_text();
        h.write_u64(manifest.len() as u64);
        h.write(manifest.as_bytes());
        match &self.payload {
            Payload::Plain(d) => {
                h.write_u64(0);
                h.write_u64(d.stable_hash());
            }
            Payload::Packed(blob) => {
                h.write_u64(1);
                h.write_u64(blob.len() as u64);
                h.write(blob);
            }
        }
        h.finish()
    }
}

impl fmt::Display for Apk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Apk({}, {} permissions, {})",
            self.manifest.package,
            self.manifest.permissions.len(),
            if self.is_packed() { "packed" } else { "plain" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dex::Dex;

    fn dex() -> Dex {
        Dex::builder()
            .class("com.x.Main", |c| {
                c.method("onCreate", 1, |m| {
                    m.const_string(0, "hello");
                });
            })
            .build()
    }

    #[test]
    fn plain_apk_exposes_dex() {
        let apk = Apk::new(Manifest::new("com.x"), dex());
        assert!(!apk.is_packed());
        assert_eq!(apk.dex().unwrap(), dex());
        assert!(apk.plain_dex().is_some());
    }

    #[test]
    fn packed_apk_recovers_dex() {
        let apk = Apk::new_packed(Manifest::new("com.x"), &dex(), 0x33);
        assert!(apk.is_packed());
        assert!(apk.plain_dex().is_none());
        assert_eq!(apk.dex().unwrap(), dex());
    }

    #[test]
    fn content_hash_tracks_manifest_and_dex() {
        let base = Apk::new(Manifest::new("com.x"), dex());
        assert_eq!(base.content_hash(), Apk::new(Manifest::new("com.x"), dex()).content_hash());

        let mut perm = Manifest::new("com.x");
        perm.add_permission(crate::Permission::ReadContacts);
        assert_ne!(base.content_hash(), Apk::new(perm, dex()).content_hash());

        let other_dex = Dex::builder().class("com.x.Other", |_| {}).build();
        assert_ne!(base.content_hash(), Apk::new(Manifest::new("com.x"), other_dex).content_hash());

        // Packed and plain forms of the same app hash apart (the packed
        // payload is what the pipeline would actually re-analyze).
        let packed = Apk::new_packed(Manifest::new("com.x"), &dex(), 0x33);
        assert_ne!(base.content_hash(), packed.content_hash());
    }

    #[test]
    fn display_mentions_packing() {
        let apk = Apk::new_packed(Manifest::new("com.x"), &dex(), 1);
        assert!(apk.to_string().contains("packed"));
    }
}
