//! Dex serialization and the packer/unpacker (DexHunter substitute).
//!
//! Some real-world apps ship a packed (encrypted) dex that defeats static
//! analysis; the paper recovers those with DexHunter before building the
//! property graph. We model this end-to-end: [`serialize`]/[`deserialize`]
//! give the dex a concrete on-disk form, [`pack`] XOR-scrambles it the way
//! commercial packers hide the original dex, and [`unpack`] recovers it.

use crate::dex::{Class, Dex, Insn, InvokeKind, Method};
use std::fmt;

/// Error produced when parsing a serialized or packed dex fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDexError {
    /// Line number (1-based) where parsing failed, when known.
    pub line: usize,
    /// Description of the failure.
    pub message: String,
}

impl fmt::Display for ParseDexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid dex at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseDexError {}

/// Serializes a dex to its textual form.
pub fn serialize(dex: &Dex) -> String {
    let mut out = String::new();
    for class in &dex.classes {
        out.push_str(&format!("class {} extends {}\n", class.name, class.superclass));
        for iface in &class.interfaces {
            out.push_str(&format!("  implements {iface}\n"));
        }
        for m in &class.methods {
            out.push_str(&format!("  method {} params {}\n", m.name, m.param_count));
            for insn in &m.instructions {
                out.push_str(&format!("    {}\n", encode_insn(insn)));
            }
        }
    }
    out
}

fn encode_insn(i: &Insn) -> String {
    match i {
        Insn::ConstString { dst, value } => format!("conststr {dst} \"{}\"", escape(value)),
        Insn::Invoke { kind, class, method, args, dst } => {
            let k = match kind {
                InvokeKind::Virtual => "virtual",
                InvokeKind::Static => "static",
                InvokeKind::Direct => "direct",
                InvokeKind::Interface => "interface",
            };
            let a: Vec<String> = args.iter().map(|r| r.to_string()).collect();
            let d = dst.map(|d| d.to_string()).unwrap_or_else(|| "-".into());
            format!("invoke {k} {class} {method} [{}] {d}", a.join(","))
        }
        Insn::Move { dst, src } => format!("move {dst} {src}"),
        Insn::FieldPut { class, field, src } => format!("fput {class} {field} {src}"),
        Insn::FieldGet { class, field, dst } => format!("fget {class} {field} {dst}"),
        Insn::NewInstance { dst, class } => format!("new {dst} {class}"),
        Insn::Return { src: Some(s) } => format!("ret {s}"),
        Insn::Return { src: None } => "retvoid".to_string(),
        Insn::Goto { target } => format!("goto {target}"),
        Insn::IfNonZero { cond, target } => format!("ifnz {cond} {target}"),
        Insn::Nop => "nop".to_string(),
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Parses a dex from its textual form.
///
/// # Errors
///
/// Returns [`ParseDexError`] if a line cannot be interpreted.
pub fn deserialize(text: &str) -> Result<Dex, ParseDexError> {
    let mut dex = Dex::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = ln + 1;
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| ParseDexError { line: lineno, message: msg.to_string() };
        if let Some(rest) = line.strip_prefix("class ") {
            let (name, sup) =
                rest.split_once(" extends ").ok_or_else(|| err("missing 'extends'"))?;
            dex.classes.push(Class {
                name: name.to_string(),
                superclass: sup.to_string(),
                interfaces: Vec::new(),
                methods: Vec::new(),
            });
        } else if let Some(iface) = line.strip_prefix("implements ") {
            dex.classes
                .last_mut()
                .ok_or_else(|| err("'implements' before any class"))?
                .interfaces
                .push(iface.to_string());
        } else if let Some(rest) = line.strip_prefix("method ") {
            let (name, params) =
                rest.split_once(" params ").ok_or_else(|| err("missing 'params'"))?;
            let pc: u32 = params.parse().map_err(|_| err("bad param count"))?;
            dex.classes
                .last_mut()
                .ok_or_else(|| err("'method' before any class"))?
                .methods
                .push(Method::new(name, pc));
        } else {
            let insn = decode_insn(line).ok_or_else(|| err("unknown instruction"))?;
            dex.classes
                .last_mut()
                .and_then(|c| c.methods.last_mut())
                .ok_or_else(|| err("instruction before any method"))?
                .instructions
                .push(insn);
        }
    }
    Ok(dex)
}

fn decode_insn(line: &str) -> Option<Insn> {
    let mut parts = line.splitn(2, ' ');
    let op = parts.next()?;
    let rest = parts.next().unwrap_or("");
    match op {
        "conststr" => {
            let (dst, value) = rest.split_once(' ')?;
            let value = value.strip_prefix('"')?.strip_suffix('"')?;
            Some(Insn::ConstString { dst: dst.parse().ok()?, value: unescape(value) })
        }
        "invoke" => {
            let mut f = rest.split(' ');
            let kind = match f.next()? {
                "virtual" => InvokeKind::Virtual,
                "static" => InvokeKind::Static,
                "direct" => InvokeKind::Direct,
                "interface" => InvokeKind::Interface,
                _ => return None,
            };
            let class = f.next()?.to_string();
            let method = f.next()?.to_string();
            let args_s = f.next()?;
            let args_s = args_s.strip_prefix('[')?.strip_suffix(']')?;
            let args = if args_s.is_empty() {
                Vec::new()
            } else {
                args_s.split(',').map(|a| a.parse().ok()).collect::<Option<Vec<_>>>()?
            };
            let dst = match f.next()? {
                "-" => None,
                d => Some(d.parse().ok()?),
            };
            Some(Insn::Invoke { kind, class, method, args, dst })
        }
        "move" => {
            let (d, s) = rest.split_once(' ')?;
            Some(Insn::Move { dst: d.parse().ok()?, src: s.parse().ok()? })
        }
        "fput" => {
            let mut f = rest.split(' ');
            Some(Insn::FieldPut {
                class: f.next()?.to_string(),
                field: f.next()?.to_string(),
                src: f.next()?.parse().ok()?,
            })
        }
        "fget" => {
            let mut f = rest.split(' ');
            Some(Insn::FieldGet {
                class: f.next()?.to_string(),
                field: f.next()?.to_string(),
                dst: f.next()?.parse().ok()?,
            })
        }
        "new" => {
            let (d, c) = rest.split_once(' ')?;
            Some(Insn::NewInstance { dst: d.parse().ok()?, class: c.to_string() })
        }
        "ret" => Some(Insn::Return { src: Some(rest.parse().ok()?) }),
        "retvoid" => Some(Insn::Return { src: None }),
        "goto" => Some(Insn::Goto { target: rest.parse().ok()? }),
        "ifnz" => {
            let (c, t) = rest.split_once(' ')?;
            Some(Insn::IfNonZero { cond: c.parse().ok()?, target: t.parse().ok()? })
        }
        "nop" => Some(Insn::Nop),
        _ => None,
    }
}

/// Magic header marking a packed dex payload.
const PACK_MAGIC: &[u8] = b"PKDX1\0";

/// Packs a dex into an opaque byte blob (rolling-XOR scramble), as a
/// commercial packer would hide the original dex inside the APK.
pub fn pack(dex: &Dex, key: u8) -> Vec<u8> {
    let text = serialize(dex);
    let mut out = Vec::with_capacity(text.len() + PACK_MAGIC.len() + 1);
    out.extend_from_slice(PACK_MAGIC);
    out.push(key);
    let mut k = key;
    for b in text.bytes() {
        let enc = b ^ k;
        out.push(enc);
        k = k.wrapping_add(13).wrapping_mul(3) ^ enc;
    }
    out
}

/// Recovers a packed dex (the DexHunter substitute).
///
/// # Errors
///
/// Returns [`ParseDexError`] if the blob is not a packed dex or the
/// recovered text fails to parse.
pub fn unpack(blob: &[u8]) -> Result<Dex, ParseDexError> {
    let bad = |msg: &str| ParseDexError { line: 0, message: msg.to_string() };
    if blob.len() < PACK_MAGIC.len() + 1 || &blob[..PACK_MAGIC.len()] != PACK_MAGIC {
        return Err(bad("missing packed-dex magic"));
    }
    let key = blob[PACK_MAGIC.len()];
    let mut k = key;
    let mut text = Vec::with_capacity(blob.len());
    for &enc in &blob[PACK_MAGIC.len() + 1..] {
        text.push(enc ^ k);
        k = k.wrapping_add(13).wrapping_mul(3) ^ enc;
    }
    let text = String::from_utf8(text).map_err(|_| bad("packed payload is not UTF-8"))?;
    deserialize(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dex::Dex;

    fn sample() -> Dex {
        Dex::builder()
            .class("com.example.Main", |c| {
                c.extends("android.app.Activity");
                c.implements("android.view.View$OnClickListener");
                c.method("onCreate", 1, |m| {
                    m.const_string(1, "content://com.android.calendar");
                    m.invoke_virtual("android.content.ContentResolver", "query", &[0, 1], Some(2));
                    m.field_put("com.example.Main", "cache", 2);
                });
                c.method("onClick", 1, |m| {
                    m.field_get("com.example.Main", "cache", 3);
                    m.invoke_static("android.util.Log", "d", &[3], None);
                    m.ret(None);
                });
            })
            .build()
    }

    #[test]
    fn serialize_round_trip() {
        let dex = sample();
        let text = serialize(&dex);
        let back = deserialize(&text).unwrap();
        assert_eq!(dex, back);
    }

    #[test]
    fn pack_unpack_round_trip() {
        let dex = sample();
        let blob = pack(&dex, 0xA7);
        let back = unpack(&blob).unwrap();
        assert_eq!(dex, back);
    }

    #[test]
    fn packed_blob_is_scrambled() {
        let dex = sample();
        let blob = pack(&dex, 0x42);
        let body = &blob[7..];
        let text = serialize(&dex);
        // The payload should not contain the plaintext class name.
        let needle = b"com.example.Main";
        assert!(text.as_bytes().windows(needle.len()).any(|w| w == needle));
        assert!(!body.windows(needle.len()).any(|w| w == needle));
    }

    #[test]
    fn unpack_rejects_garbage() {
        assert!(unpack(b"not a dex").is_err());
        assert!(unpack(b"").is_err());
    }

    #[test]
    fn deserialize_rejects_malformed_lines() {
        let err = deserialize("class Foo\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(deserialize("    bogus 1 2\n").is_err());
    }

    #[test]
    fn escape_round_trip_in_strings() {
        let dex = Dex::builder()
            .class("a.B", |c| {
                c.method("m", 0, |m| {
                    m.const_string(0, "line\nbreak\\slash");
                });
            })
            .build();
        let back = deserialize(&serialize(&dex)).unwrap();
        assert_eq!(dex, back);
    }
}
