//! A register-based dex-like intermediate representation.
//!
//! The real PPChecker analyzes Dalvik bytecode recovered from the APK. This
//! module models the subset of Dalvik that the paper's static analysis
//! observes: classes with superclasses and interfaces, methods with
//! register-based instructions, string constants (for content-provider
//! URIs), virtual/static invocations, field accesses, object allocation,
//! and intra-method control flow.

use std::fmt;

/// A virtual register index.
pub type Reg = u32;

/// Invocation kinds (mirrors `invoke-virtual` / `invoke-static` / ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvokeKind {
    /// `invoke-virtual`
    Virtual,
    /// `invoke-static`
    Static,
    /// `invoke-direct` (constructors, private methods)
    Direct,
    /// `invoke-interface`
    Interface,
}

/// One IR instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Insn {
    /// Loads a string constant into `dst`.
    ConstString {
        /// Destination register.
        dst: Reg,
        /// The constant.
        value: String,
    },
    /// Invokes `class.method(args)`, optionally storing the result.
    Invoke {
        /// Invocation kind.
        kind: InvokeKind,
        /// Declaring class of the callee (receiver static type).
        class: String,
        /// Method name.
        method: String,
        /// Argument registers (receiver first for non-static calls).
        args: Vec<Reg>,
        /// Register receiving the return value (from a following
        /// `move-result`), if any.
        dst: Option<Reg>,
    },
    /// Register copy.
    Move {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// Stores `src` into an instance/static field.
    FieldPut {
        /// Declaring class.
        class: String,
        /// Field name.
        field: String,
        /// Source register.
        src: Reg,
    },
    /// Loads a field into `dst`.
    FieldGet {
        /// Declaring class.
        class: String,
        /// Field name.
        field: String,
        /// Destination register.
        dst: Reg,
    },
    /// Allocates an object of `class` into `dst`.
    NewInstance {
        /// Destination register.
        dst: Reg,
        /// Allocated class.
        class: String,
    },
    /// Returns, optionally with a value.
    Return {
        /// Returned register, if non-void.
        src: Option<Reg>,
    },
    /// Unconditional jump to instruction index `target`.
    Goto {
        /// Target instruction index.
        target: usize,
    },
    /// Conditional jump on `cond` to `target` (fall-through otherwise).
    IfNonZero {
        /// Condition register.
        cond: Reg,
        /// Target instruction index.
        target: usize,
    },
    /// No-op.
    Nop,
}

/// A method body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Method {
    /// Method name (no signature — the IR is name-resolved).
    pub name: String,
    /// Number of parameter registers; parameters occupy registers
    /// `0..param_count`.
    pub param_count: u32,
    /// Instruction list.
    pub instructions: Vec<Insn>,
}

impl Method {
    /// Creates an empty method.
    pub fn new(name: &str, param_count: u32) -> Self {
        Method { name: name.to_string(), param_count, instructions: Vec::new() }
    }
}

/// A class definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Class {
    /// Fully qualified name, e.g. `com.example.app.MainActivity`.
    pub name: String,
    /// Superclass fully qualified name.
    pub superclass: String,
    /// Implemented interfaces.
    pub interfaces: Vec<String>,
    /// Methods.
    pub methods: Vec<Method>,
}

impl Class {
    /// Looks up a method by name.
    pub fn method(&self, name: &str) -> Option<&Method> {
        self.methods.iter().find(|m| m.name == name)
    }
}

/// A dex file: the set of application classes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dex {
    /// All classes.
    pub classes: Vec<Class>,
}

impl Dex {
    /// Creates an empty dex.
    pub fn new() -> Self {
        Dex::default()
    }

    /// Starts building a dex fluently.
    pub fn builder() -> DexBuilder {
        DexBuilder { dex: Dex::new() }
    }

    /// Looks up a class by fully qualified name.
    pub fn class(&self, name: &str) -> Option<&Class> {
        self.classes.iter().find(|c| c.name == name)
    }

    /// Iterates `(class, method)` pairs.
    pub fn iter_methods(&self) -> impl Iterator<Item = (&Class, &Method)> {
        self.classes.iter().flat_map(|c| c.methods.iter().map(move |m| (c, m)))
    }

    /// Total instruction count (a rough "bytecode size").
    pub fn instruction_count(&self) -> usize {
        self.iter_methods().map(|(_, m)| m.instructions.len()).sum()
    }

    /// Total number of method bodies.
    pub fn method_count(&self) -> usize {
        self.classes.iter().map(|c| c.methods.len()).sum()
    }

    /// Dense [`MethodRef`]s for every method, in declaration order.
    ///
    /// Position `i` of the returned table is the stable dense id of the
    /// `i`-th method of the dex; analyses that index per-method state by
    /// `u32` build their tables off this ordering.
    pub fn method_refs(&self) -> Vec<MethodRef> {
        let mut out = Vec::with_capacity(self.method_count());
        for (ci, class) in self.classes.iter().enumerate() {
            for mi in 0..class.methods.len() {
                out.push(MethodRef { class: ci as u32, method: mi as u32 });
            }
        }
        out
    }

    /// Resolves a [`MethodRef`] back to its class and method.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds for this dex.
    pub fn method_at(&self, r: MethodRef) -> (&Class, &Method) {
        let class = &self.classes[r.class as usize];
        (class, &class.methods[r.method as usize])
    }

    /// A stable structural hash of all classes (see [`stable_hash_classes`]).
    pub fn stable_hash(&self) -> u64 {
        stable_hash_classes(self.classes.iter())
    }
}

/// A dense reference to one method body: indexes into [`Dex::classes`] and
/// that class's method list. Assigned in declaration order, so the same
/// dex bytes always produce the same ids (unlike map-derived orderings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MethodRef {
    /// Index into [`Dex::classes`].
    pub class: u32,
    /// Index into the class's method list.
    pub method: u32,
}

/// A stable content hash over a set of classes (FNV-1a over a canonical
/// byte encoding of names, hierarchy, and instructions).
///
/// Unlike `std`'s `Hash`, the digest depends only on the class *content*
/// and order — not on process-specific hasher state — so it is usable as
/// a cross-run cache key (e.g. keying per-library taint summaries by the
/// embedded library's bytes).
pub fn stable_hash_classes<'a>(classes: impl Iterator<Item = &'a Class>) -> u64 {
    let mut h = Fnv::new();
    for class in classes {
        class.hash_into(&mut h);
    }
    h.finish()
}

impl Class {
    /// The stable content hash of this class alone.
    pub fn stable_hash(&self) -> u64 {
        let mut h = Fnv::new();
        self.hash_into(&mut h);
        h.finish()
    }

    fn hash_into(&self, h: &mut Fnv) {
        h.str(&self.name);
        h.str(&self.superclass);
        h.u64(self.interfaces.len() as u64);
        for i in &self.interfaces {
            h.str(i);
        }
        h.u64(self.methods.len() as u64);
        for m in &self.methods {
            h.str(&m.name);
            h.u64(u64::from(m.param_count));
            h.u64(m.instructions.len() as u64);
            for insn in &m.instructions {
                insn.hash_into(h);
            }
        }
    }
}

impl Insn {
    fn hash_into(&self, h: &mut Fnv) {
        match self {
            Insn::ConstString { dst, value } => {
                h.u64(1);
                h.u64(u64::from(*dst));
                h.str(value);
            }
            Insn::Invoke { kind, class, method, args, dst } => {
                h.u64(2);
                h.u64(match kind {
                    InvokeKind::Virtual => 0,
                    InvokeKind::Static => 1,
                    InvokeKind::Direct => 2,
                    InvokeKind::Interface => 3,
                });
                h.str(class);
                h.str(method);
                h.u64(args.len() as u64);
                for &a in args {
                    h.u64(u64::from(a));
                }
                h.u64(dst.map_or(u64::MAX, u64::from));
            }
            Insn::Move { dst, src } => {
                h.u64(3);
                h.u64(u64::from(*dst));
                h.u64(u64::from(*src));
            }
            Insn::FieldPut { class, field, src } => {
                h.u64(4);
                h.str(class);
                h.str(field);
                h.u64(u64::from(*src));
            }
            Insn::FieldGet { class, field, dst } => {
                h.u64(5);
                h.str(class);
                h.str(field);
                h.u64(u64::from(*dst));
            }
            Insn::NewInstance { dst, class } => {
                h.u64(6);
                h.u64(u64::from(*dst));
                h.str(class);
            }
            Insn::Return { src } => {
                h.u64(7);
                h.u64(src.map_or(u64::MAX, u64::from));
            }
            Insn::Goto { target } => {
                h.u64(8);
                h.u64(*target as u64);
            }
            Insn::IfNonZero { cond, target } => {
                h.u64(9);
                h.u64(u64::from(*cond));
                h.u64(*target as u64);
            }
            Insn::Nop => h.u64(10),
        }
    }
}

/// 64-bit FNV-style xor-multiply mix (the usual offset basis and prime),
/// folded over 8-byte little-endian chunks rather than single bytes: one
/// multiply per word instead of eight, which matters when every class of
/// every embedded lib is hashed per app. Length-prefixing every string
/// keeps the chunk stream prefix-free (the zero-padded tail cannot
/// collide with a longer string because the length differs).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.word(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.word(u64::from_le_bytes(buf));
        }
    }

    fn word(&mut self, w: u64) {
        self.0 ^= w;
        self.0 = self.0.wrapping_mul(0x100_0000_01b3);
    }

    fn u64(&mut self, v: u64) {
        self.word(v);
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Fluent builder for [`Dex`].
#[derive(Debug)]
pub struct DexBuilder {
    dex: Dex,
}

impl DexBuilder {
    /// Adds a class, configured by `f`.
    pub fn class(mut self, name: &str, f: impl FnOnce(&mut ClassBuilder)) -> Self {
        let mut cb = ClassBuilder {
            class: Class {
                name: name.to_string(),
                superclass: "java.lang.Object".to_string(),
                interfaces: Vec::new(),
                methods: Vec::new(),
            },
        };
        f(&mut cb);
        self.dex.classes.push(cb.class);
        self
    }

    /// Finishes the dex.
    pub fn build(self) -> Dex {
        self.dex
    }
}

/// Fluent builder for [`Class`].
#[derive(Debug)]
pub struct ClassBuilder {
    class: Class,
}

impl ClassBuilder {
    /// Sets the superclass.
    pub fn extends(&mut self, superclass: &str) -> &mut Self {
        self.class.superclass = superclass.to_string();
        self
    }

    /// Adds an implemented interface.
    pub fn implements(&mut self, iface: &str) -> &mut Self {
        self.class.interfaces.push(iface.to_string());
        self
    }

    /// Adds a method, configured by `f`.
    pub fn method(
        &mut self,
        name: &str,
        param_count: u32,
        f: impl FnOnce(&mut MethodBuilder),
    ) -> &mut Self {
        let mut mb = MethodBuilder { method: Method::new(name, param_count) };
        f(&mut mb);
        if !matches!(mb.method.instructions.last(), Some(Insn::Return { .. })) {
            mb.method.instructions.push(Insn::Return { src: None });
        }
        self.class.methods.push(mb.method);
        self
    }
}

/// Fluent builder for [`Method`] bodies.
#[derive(Debug)]
pub struct MethodBuilder {
    method: Method,
}

impl MethodBuilder {
    /// Appends a raw instruction.
    pub fn push(&mut self, insn: Insn) -> &mut Self {
        self.method.instructions.push(insn);
        self
    }

    /// `const-string dst, value`
    pub fn const_string(&mut self, dst: Reg, value: &str) -> &mut Self {
        self.push(Insn::ConstString { dst, value: value.to_string() })
    }

    /// `invoke-virtual class.method(args)` with optional result register.
    pub fn invoke_virtual(
        &mut self,
        class: &str,
        method: &str,
        args: &[Reg],
        dst: Option<Reg>,
    ) -> &mut Self {
        self.push(Insn::Invoke {
            kind: InvokeKind::Virtual,
            class: class.to_string(),
            method: method.to_string(),
            args: args.to_vec(),
            dst,
        })
    }

    /// `invoke-static class.method(args)` with optional result register.
    pub fn invoke_static(
        &mut self,
        class: &str,
        method: &str,
        args: &[Reg],
        dst: Option<Reg>,
    ) -> &mut Self {
        self.push(Insn::Invoke {
            kind: InvokeKind::Static,
            class: class.to_string(),
            method: method.to_string(),
            args: args.to_vec(),
            dst,
        })
    }

    /// `move dst, src`
    pub fn mov(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.push(Insn::Move { dst, src })
    }

    /// `new-instance dst, class`
    pub fn new_instance(&mut self, dst: Reg, class: &str) -> &mut Self {
        self.push(Insn::NewInstance { dst, class: class.to_string() })
    }

    /// `iput/sput src → class.field`
    pub fn field_put(&mut self, class: &str, field: &str, src: Reg) -> &mut Self {
        self.push(Insn::FieldPut { class: class.to_string(), field: field.to_string(), src })
    }

    /// `iget/sget class.field → dst`
    pub fn field_get(&mut self, class: &str, field: &str, dst: Reg) -> &mut Self {
        self.push(Insn::FieldGet { class: class.to_string(), field: field.to_string(), dst })
    }

    /// `return` / `return v`
    pub fn ret(&mut self, src: Option<Reg>) -> &mut Self {
        self.push(Insn::Return { src })
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Insn::ConstString { dst, value } => write!(f, "const-string v{dst}, \"{value}\""),
            Insn::Invoke { kind, class, method, args, dst } => {
                let k = match kind {
                    InvokeKind::Virtual => "invoke-virtual",
                    InvokeKind::Static => "invoke-static",
                    InvokeKind::Direct => "invoke-direct",
                    InvokeKind::Interface => "invoke-interface",
                };
                let a: Vec<String> = args.iter().map(|r| format!("v{r}")).collect();
                write!(f, "{k} {}.{}({})", class, method, a.join(", "))?;
                if let Some(d) = dst {
                    write!(f, " → v{d}")?;
                }
                Ok(())
            }
            Insn::Move { dst, src } => write!(f, "move v{dst}, v{src}"),
            Insn::FieldPut { class, field, src } => write!(f, "iput v{src} → {class}.{field}"),
            Insn::FieldGet { class, field, dst } => write!(f, "iget {class}.{field} → v{dst}"),
            Insn::NewInstance { dst, class } => write!(f, "new-instance v{dst}, {class}"),
            Insn::Return { src: Some(s) } => write!(f, "return v{s}"),
            Insn::Return { src: None } => write!(f, "return-void"),
            Insn::Goto { target } => write!(f, "goto @{target}"),
            Insn::IfNonZero { cond, target } => write!(f, "if-nez v{cond} @{target}"),
            Insn::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dex() -> Dex {
        Dex::builder()
            .class("com.example.app.MainActivity", |c| {
                c.extends("android.app.Activity");
                c.method("onCreate", 1, |m| {
                    m.invoke_virtual(
                        "android.telephony.TelephonyManager",
                        "getDeviceId",
                        &[2],
                        Some(3),
                    );
                    m.invoke_static("android.util.Log", "d", &[3], None);
                });
            })
            .build()
    }

    #[test]
    fn builder_constructs_classes_and_methods() {
        let dex = sample_dex();
        let cls = dex.class("com.example.app.MainActivity").unwrap();
        assert_eq!(cls.superclass, "android.app.Activity");
        let m = cls.method("onCreate").unwrap();
        // two invokes + implicit return
        assert_eq!(m.instructions.len(), 3);
    }

    #[test]
    fn builder_appends_implicit_return() {
        let dex = sample_dex();
        let m = dex.class("com.example.app.MainActivity").unwrap().method("onCreate").unwrap();
        assert!(matches!(m.instructions.last(), Some(Insn::Return { src: None })));
    }

    #[test]
    fn iter_methods_walks_everything() {
        let dex = sample_dex();
        assert_eq!(dex.iter_methods().count(), 1);
        assert_eq!(dex.instruction_count(), 3);
    }

    #[test]
    fn method_refs_are_declaration_ordered() {
        let dex = Dex::builder()
            .class("com.x.A", |c| {
                c.method("a", 0, |_| {});
                c.method("b", 0, |_| {});
            })
            .class("com.x.B", |c| {
                c.method("c", 0, |_| {});
            })
            .build();
        let refs = dex.method_refs();
        assert_eq!(refs.len(), 3);
        assert_eq!(dex.method_count(), 3);
        assert_eq!(refs[0], MethodRef { class: 0, method: 0 });
        assert_eq!(refs[2], MethodRef { class: 1, method: 0 });
        let (cls, m) = dex.method_at(refs[1]);
        assert_eq!((cls.name.as_str(), m.name.as_str()), ("com.x.A", "b"));
    }

    #[test]
    fn stable_hash_is_content_addressed() {
        let dex = sample_dex();
        // Same bytes, same digest — across independently built values.
        assert_eq!(dex.stable_hash(), sample_dex().stable_hash());
        // Any content change moves the digest.
        let mut renamed = dex.clone();
        renamed.classes[0].methods[0].name = "onResume".into();
        assert_ne!(dex.stable_hash(), renamed.stable_hash());
        let mut rewired = dex.clone();
        if let Insn::Invoke { args, .. } = &mut rewired.classes[0].methods[0].instructions[0] {
            args[0] = 7;
        }
        assert_ne!(dex.stable_hash(), rewired.stable_hash());
        // Per-class digests feed the same canonical stream.
        assert_eq!(dex.stable_hash(), stable_hash_classes(dex.classes.iter()));
        assert_eq!(dex.classes[0].stable_hash(), dex.stable_hash());
    }

    #[test]
    fn insn_display_is_dalvik_like() {
        let i = Insn::ConstString { dst: 1, value: "content://contacts".into() };
        assert_eq!(i.to_string(), "const-string v1, \"content://contacts\"");
        let inv = Insn::Invoke {
            kind: InvokeKind::Virtual,
            class: "a.B".into(),
            method: "c".into(),
            args: vec![0],
            dst: Some(1),
        };
        assert_eq!(inv.to_string(), "invoke-virtual a.B.c(v0) → v1");
    }
}

/// A structural problem found by [`Dex::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DexDefect {
    /// Two classes share a name.
    DuplicateClass(String),
    /// Two methods in one class share a name.
    DuplicateMethod(String, String),
    /// A branch targets an instruction index outside the method body.
    BranchOutOfRange {
        /// Class name.
        class: String,
        /// Method name.
        method: String,
        /// Instruction index of the branch.
        at: usize,
        /// The out-of-range target.
        target: usize,
    },
    /// A method body does not end with a `return`.
    MissingReturn(String, String),
}

impl fmt::Display for DexDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DexDefect::DuplicateClass(c) => write!(f, "duplicate class {c}"),
            DexDefect::DuplicateMethod(c, m) => write!(f, "duplicate method {c}.{m}"),
            DexDefect::BranchOutOfRange { class, method, at, target } => {
                write!(f, "branch at {class}.{method}@{at} targets out-of-range index {target}")
            }
            DexDefect::MissingReturn(c, m) => write!(f, "{c}.{m} does not end with return"),
        }
    }
}

impl Dex {
    /// Checks structural well-formedness: unique class/method names,
    /// in-range branch targets, and return-terminated bodies. Returns all
    /// defects found (empty = valid).
    pub fn validate(&self) -> Vec<DexDefect> {
        let mut defects = Vec::new();
        let mut class_names: Vec<&str> = Vec::new();
        for class in &self.classes {
            if class_names.contains(&class.name.as_str()) {
                defects.push(DexDefect::DuplicateClass(class.name.clone()));
            }
            class_names.push(&class.name);
            let mut method_names: Vec<&str> = Vec::new();
            for m in &class.methods {
                if method_names.contains(&m.name.as_str()) {
                    defects.push(DexDefect::DuplicateMethod(class.name.clone(), m.name.clone()));
                }
                method_names.push(&m.name);
                for (at, insn) in m.instructions.iter().enumerate() {
                    let target = match insn {
                        Insn::Goto { target } => Some(*target),
                        Insn::IfNonZero { target, .. } => Some(*target),
                        _ => None,
                    };
                    if let Some(t) = target {
                        if t >= m.instructions.len() {
                            defects.push(DexDefect::BranchOutOfRange {
                                class: class.name.clone(),
                                method: m.name.clone(),
                                at,
                                target: t,
                            });
                        }
                    }
                }
                if !matches!(m.instructions.last(), Some(Insn::Return { .. })) {
                    defects.push(DexDefect::MissingReturn(class.name.clone(), m.name.clone()));
                }
            }
        }
        defects
    }
}

#[cfg(test)]
mod validate_tests {
    use super::*;

    #[test]
    fn builder_output_is_valid() {
        let dex = Dex::builder()
            .class("com.x.A", |c| {
                c.method("m", 1, |b| {
                    b.const_string(0, "x");
                });
            })
            .build();
        assert!(dex.validate().is_empty());
    }

    #[test]
    fn duplicate_class_detected() {
        let dex = Dex::builder()
            .class("com.x.A", |c| {
                c.method("m", 0, |_| {});
            })
            .class("com.x.A", |c| {
                c.method("m", 0, |_| {});
            })
            .build();
        assert!(matches!(dex.validate()[0], DexDefect::DuplicateClass(_)));
    }

    #[test]
    fn out_of_range_branch_detected() {
        let mut dex = Dex::builder()
            .class("com.x.A", |c| {
                c.method("m", 0, |b| {
                    b.push(Insn::Goto { target: 99 });
                });
            })
            .build();
        let defects = dex.validate();
        assert!(defects
            .iter()
            .any(|d| matches!(d, DexDefect::BranchOutOfRange { target: 99, .. })));
        // Fixing the branch clears the defect.
        dex.classes[0].methods[0].instructions[0] = Insn::Nop;
        assert!(dex.validate().is_empty());
    }

    #[test]
    fn missing_return_detected() {
        let dex = Dex {
            classes: vec![Class {
                name: "com.x.A".to_string(),
                superclass: "java.lang.Object".to_string(),
                interfaces: vec![],
                methods: vec![Method {
                    name: "m".to_string(),
                    param_count: 0,
                    instructions: vec![Insn::Nop],
                }],
            }],
        };
        assert!(matches!(dex.validate()[0], DexDefect::MissingReturn(..)));
    }
}
