//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! this dependency-free re-implementation of the slice of proptest it
//! uses: the [`proptest!`] macro, `prop_assert*` macros, [`Strategy`]
//! with `prop_map`, [`prop_oneof!`], [`Just`], [`any`], regex-subset
//! string strategies, integer-range strategies, tuple strategies, and
//! [`collection::vec`].
//!
//! Semantics: each test runs `PROPTEST_CASES` (default 64) seeded random
//! cases. The seed is derived from the test name, so runs are fully
//! deterministic; there is no shrinking — a failing case reports its
//! inputs directly.

use std::fmt;

// ---------------------------------------------------------------------
// deterministic RNG (SplitMix64, same construction as the rand shim)
// ---------------------------------------------------------------------

/// The per-test random source.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x243F_6A88_85A3_08D3 }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform draw from an inclusive-exclusive span.
    pub fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.below(hi - lo)
    }
}

/// FNV-1a hash of a test name, used as the base seed.
pub fn seed_of(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Number of cases per property (override with `PROPTEST_CASES`).
pub fn case_count() -> usize {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

// ---------------------------------------------------------------------
// strategies
// ---------------------------------------------------------------------

/// A generator of test inputs.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (the [`prop_oneof!`] backend).
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: fmt::Debug> OneOf<T> {
    /// Builds from pre-boxed arms; must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T: fmt::Debug> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// integer ranges -------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.in_range(self.start as u64, self.end as u64) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

// tuples ---------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

// any ------------------------------------------------------------------

/// Types with a canonical "arbitrary value" strategy.
pub trait Arbitrary: fmt::Debug + Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An arbitrary value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// regex-subset string strategies ---------------------------------------

/// One parsed regex atom with its repetition bounds.
#[derive(Debug, Clone)]
enum Atom {
    Lit(char),
    Any,
    Class(Vec<(char, char)>),
    Group(Vec<(Atom, usize, usize)>),
}

fn generate_atom(atom: &Atom, rng: &mut TestRng, out: &mut String) {
    match atom {
        Atom::Lit(c) => out.push(*c),
        Atom::Any => {
            // Printable ASCII plus whitespace and a sprinkling of
            // non-ASCII, approximating proptest's arbitrary `char`.
            const EXTRA: &[char] = &['\t', '\n', 'é', 'ß', 'λ', '中', '—', '☂'];
            let roll = rng.below(100);
            if roll < 88 {
                out.push(char::from_u32(rng.in_range(0x20, 0x7F) as u32).unwrap());
            } else {
                out.push(EXTRA[rng.below(EXTRA.len() as u64) as usize]);
            }
        }
        Atom::Class(ranges) => {
            let total: u64 = ranges.iter().map(|(a, b)| (*b as u64) - (*a as u64) + 1).sum();
            let mut pick = rng.below(total);
            for (a, b) in ranges {
                let span = (*b as u64) - (*a as u64) + 1;
                if pick < span {
                    out.push(char::from_u32(*a as u32 + pick as u32).unwrap());
                    return;
                }
                pick -= span;
            }
            unreachable!("class pick within total span");
        }
        Atom::Group(atoms) => {
            for (inner, lo, hi) in atoms {
                let reps = rng.in_range(*lo as u64, *hi as u64 + 1) as usize;
                for _ in 0..reps {
                    generate_atom(inner, rng, out);
                }
            }
        }
    }
}

/// Parses the supported regex subset: literals, `\`-escapes, `.`,
/// `[...]` classes (with ranges), `(...)` groups, and `{m,n}` / `{n}`
/// repetition.
fn parse_regex(pattern: &str) -> Vec<(Atom, usize, usize)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    parse_seq(&chars, &mut i, None)
}

fn parse_seq(chars: &[char], i: &mut usize, until: Option<char>) -> Vec<(Atom, usize, usize)> {
    let mut atoms = Vec::new();
    while *i < chars.len() {
        let c = chars[*i];
        if Some(c) == until {
            *i += 1;
            break;
        }
        *i += 1;
        let atom = match c {
            '.' => Atom::Any,
            '\\' => {
                let e = chars[*i];
                *i += 1;
                Atom::Lit(unescape(e))
            }
            '[' => Atom::Class(parse_class(chars, i)),
            '(' => Atom::Group(parse_seq(chars, i, Some(')'))),
            other => Atom::Lit(other),
        };
        let (lo, hi) = parse_quantifier(chars, i);
        atoms.push((atom, lo, hi));
    }
    atoms
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

fn parse_class(chars: &[char], i: &mut usize) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    while chars[*i] != ']' {
        let mut lo = chars[*i];
        *i += 1;
        if lo == '\\' {
            lo = unescape(chars[*i]);
            *i += 1;
        }
        if chars[*i] == '-' && chars[*i + 1] != ']' {
            *i += 1;
            let mut hi = chars[*i];
            *i += 1;
            if hi == '\\' {
                hi = unescape(chars[*i]);
                *i += 1;
            }
            ranges.push((lo, hi));
        } else {
            ranges.push((lo, lo));
        }
    }
    *i += 1; // consume ']'
    ranges
}

fn parse_quantifier(chars: &[char], i: &mut usize) -> (usize, usize) {
    if *i < chars.len() && chars[*i] == '{' {
        *i += 1;
        let mut spec = String::new();
        while chars[*i] != '}' {
            spec.push(chars[*i]);
            *i += 1;
        }
        *i += 1; // consume '}'
        match spec.split_once(',') {
            Some((lo, hi)) => (lo.trim().parse().unwrap(), hi.trim().parse().unwrap()),
            None => {
                let n = spec.trim().parse().unwrap();
                (n, n)
            }
        }
    } else {
        (1, 1)
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_regex(self);
        let mut out = String::new();
        for (atom, lo, hi) in &atoms {
            let reps = rng.in_range(*lo as u64, *hi as u64 + 1) as usize;
            for _ in 0..reps {
                generate_atom(atom, rng, &mut out);
            }
        }
        out
    }
}

// collections ----------------------------------------------------------

/// `proptest::collection` equivalents.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt;
    use std::ops::Range;

    /// A strategy producing `Vec`s of `element` with a length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `element` values with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.in_range(self.size.start as u64, self.size.end as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------
// macros
// ---------------------------------------------------------------------

/// Asserts a condition inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                left,
                right
            ));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return Err(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($a),
                stringify!($b),
                left
            ));
        }
    }};
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __prop_bind {
    // terminal: no more arguments — run the body.
    ($rng:ident; $body:block;) => {{
        let __res: ::std::result::Result<(), String> = (|| {
            $body
            #[allow(unreachable_code)]
            Ok(())
        })();
        __res
    }};
    // `name in strategy` binding.
    ($rng:ident; $body:block; $name:ident in $strat:expr, $($rest:tt)*) => {{
        let $name = $crate::Strategy::generate(&$strat, &mut $rng);
        $crate::__prop_bind!($rng; $body; $($rest)*)
    }};
    ($rng:ident; $body:block; $name:ident in $strat:expr) => {
        $crate::__prop_bind!($rng; $body; $name in $strat,)
    };
    // `name: Type` binding (any::<Type>()).
    ($rng:ident; $body:block; $name:ident : $ty:ty, $($rest:tt)*) => {{
        let $name = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
        $crate::__prop_bind!($rng; $body; $($rest)*)
    }};
    ($rng:ident; $body:block; $name:ident : $ty:ty) => {
        $crate::__prop_bind!($rng; $body; $name: $ty,)
    };
}

/// Declares property tests. Each function body runs for
/// [`case_count`] seeded cases; `prop_assert*` failures abort the case
/// with a diagnostic.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::case_count();
                let base = $crate::seed_of(stringify!($name));
                for case in 0..cases {
                    let mut __prop_rng =
                        $crate::TestRng::new(base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    let outcome = $crate::__prop_bind!(__prop_rng; $body; $($args)*);
                    if let Err(msg) = outcome {
                        panic!(
                            "property {} failed at case {case}/{cases}: {msg}",
                            stringify!($name)
                        );
                    }
                }
            }
        )*
    };
}

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, OneOf, Strategy,
    };
    /// Nested module mirror so `prop::collection::vec` paths resolve.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn regex_class_with_ranges() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let s = "[a-zA-Z0-9 .,;:!?]{0,30}".generate(&mut rng);
            assert!(s.len() <= 30);
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || " .,;:!?".contains(c)));
        }
    }

    #[test]
    fn regex_group_repetition() {
        let mut rng = TestRng::new(2);
        for _ in 0..100 {
            let s = "[a-z]{2,8}(\\.[a-z]{2,8}){1,3}".generate(&mut rng);
            let parts: Vec<&str> = s.split('.').collect();
            assert!((2..=4).contains(&parts.len()), "parts in {s:?}");
            for p in parts {
                assert!((2..=8).contains(&p.len()));
                assert!(p.chars().all(|c| c.is_ascii_lowercase()));
            }
        }
    }

    #[test]
    fn regex_space_to_tilde_range() {
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            let s = "[ -~]{0,40}".generate(&mut rng);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn regex_newline_escape() {
        let mut rng = TestRng::new(4);
        let mut saw_newline = false;
        for _ in 0..50 {
            let s = "([a-z ]{0,10}\n){0,5}".generate(&mut rng);
            if s.contains('\n') {
                saw_newline = true;
            }
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == ' ' || c == '\n'));
        }
        assert!(saw_newline);
    }

    #[test]
    fn oneof_hits_every_arm() {
        let strat = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut rng = TestRng::new(5);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(strat.generate(&mut rng) - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn vec_strategy_respects_bounds() {
        let strat = collection::vec(0u32..10, 2..5);
        let mut rng = TestRng::new(6);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        /// The macro itself works end-to-end, including mixed arg forms.
        #[test]
        fn macro_smoke(s in "[a-c]{1,4}", n in 0u32..7, b: u8) {
            prop_assert!(!s.is_empty());
            prop_assert!(s.len() <= 4);
            prop_assert!(n < 7);
            let _ = b;
            prop_assert_eq!(s.clone(), s.clone());
            prop_assert_ne!(s.len(), 99usize);
        }
    }
}
