//! Revealing inconsistent privacy policies (Algorithm 5).
//!
//! An app's policy is inconsistent when one of its *negative* sentences
//! conflicts with a *positive* sentence of an embedded third-party lib's
//! policy: same verb category, same resource (ESA similarity). Policies
//! that disclaim third-party responsibility are exempt.

use crate::matcher::Matcher;
use crate::problems::Inconsistency;
use ppchecker_policy::PolicyAnalysis;

/// Algorithm 5 over one app policy and one lib policy.
///
/// Requirements per the paper:
/// 1. the sentences' main verbs belong to the same category;
/// 2. the app sentence is negative and the lib sentence is positive;
/// 3. the sentences refer to the same resource.
pub fn check_pair(
    app_policy: &PolicyAnalysis,
    lib_id: &str,
    lib_policy: &PolicyAnalysis,
    esa: &Matcher,
) -> Vec<Inconsistency> {
    let mut out = Vec::new();
    if app_policy.has_disclaimer {
        return out;
    }
    for app_sent in app_policy.negative_sentences() {
        for lib_sent in lib_policy.positive_sentences() {
            if app_sent.category != lib_sent.category {
                continue;
            }
            for &app_res in app_sent.resource_symbols() {
                for &lib_res in lib_sent.resource_symbols() {
                    if esa.same_thing_sym(app_res, lib_res) {
                        out.push(Inconsistency {
                            lib_id: lib_id.to_string(),
                            category: app_sent.category,
                            app_sentence: app_sent.text.clone(),
                            lib_sentence: lib_sent.text.clone(),
                            app_resource: app_res.as_str().to_string(),
                            lib_resource: lib_res.as_str().to_string(),
                        });
                    }
                }
            }
        }
    }
    dedup(out)
}

/// Algorithm 5 over all of an app's detected libs.
pub fn check_all<'a>(
    app_policy: &PolicyAnalysis,
    libs: impl IntoIterator<Item = (&'a str, &'a PolicyAnalysis)>,
    esa: &Matcher,
) -> Vec<Inconsistency> {
    let mut out = Vec::new();
    for (id, lib_policy) in libs {
        out.extend(check_pair(app_policy, id, lib_policy, esa));
    }
    out
}

fn dedup(mut v: Vec<Inconsistency>) -> Vec<Inconsistency> {
    // Three owned Strings per key become three arena copies reclaimed
    // wholesale at the next app's reset.
    crate::scratch::with_app_arena(|bump| {
        let mut seen: Vec<(&str, &str, &str)> = Vec::new();
        v.retain(|i| {
            let dup = seen
                .iter()
                .any(|&(l, a, s)| l == i.lib_id && a == i.app_sentence && s == i.lib_sentence);
            if !dup {
                seen.push((
                    bump.alloc_str(&i.lib_id),
                    bump.alloc_str(&i.app_sentence),
                    bump.alloc_str(&i.lib_sentence),
                ));
            }
            !dup
        });
    });
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppchecker_policy::{PolicyAnalyzer, VerbCategory};

    fn esa() -> Matcher {
        Matcher::new()
    }

    fn analyze(text: &str) -> PolicyAnalysis {
        PolicyAnalyzer::new().analyze_text(text)
    }

    #[test]
    fn templerun_unity_case() {
        // Fig. 3: the app denies collecting location; Unity3d declares it
        // will receive location information.
        let app = analyze("We do not collect your location information.");
        let lib = analyze("We may receive your location information and device id.");
        let found = check_pair(&app, "unity3d", &lib, &esa());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].category, VerbCategory::Collect);
        assert_eq!(found[0].lib_id, "unity3d");
    }

    #[test]
    fn category_mismatch_not_flagged() {
        // App denies *disclosing* location; lib *collects* location —
        // different categories, no conflict under requirement (1).
        let app = analyze("We will not share your location.");
        let lib = analyze("We collect your location.");
        assert!(check_pair(&app, "lib", &lib, &esa()).is_empty());
    }

    #[test]
    fn resource_mismatch_not_flagged() {
        let app = analyze("We do not collect your calendar events.");
        let lib = analyze("We collect your device id.");
        assert!(check_pair(&app, "lib", &lib, &esa()).is_empty());
    }

    #[test]
    fn disclaimer_suppresses_findings() {
        let app = analyze(
            "We are not responsible for the privacy practices of those third party sites. \
             We do not collect your location information.",
        );
        assert!(app.has_disclaimer);
        let lib = analyze("We may receive your location information.");
        assert!(check_pair(&app, "unity3d", &lib, &esa()).is_empty());
    }

    #[test]
    fn disclose_category_conflict() {
        let app = analyze("We will never share your device id with anyone.");
        let lib = analyze("We may share your device id with advertising partners.");
        let found = check_pair(&app, "admob", &lib, &esa());
        assert!(!found.is_empty());
        assert_eq!(found[0].category, VerbCategory::Disclose);
    }

    #[test]
    fn check_all_iterates_libs() {
        let app = analyze("We do not collect your location information.");
        let lib1 = analyze("We may receive your location information.");
        let lib2 = analyze("We collect your device id.");
        let found = check_all(&app, [("unity3d", &lib1), ("flurry", &lib2)], &esa());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].lib_id, "unity3d");
    }

    #[test]
    fn positive_app_sentences_do_not_conflict() {
        let app = analyze("We collect your location information.");
        let lib = analyze("We collect your location information.");
        assert!(check_pair(&app, "lib", &lib, &esa()).is_empty());
    }
}
