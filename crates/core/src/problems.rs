//! Finding types: the three kinds of privacy-policy problems, plus the
//! report's extension channel for successor-literature detectors.

use crate::detector::{DetectorId, Finding, FindingPayload};
use ppchecker_apk::{Permission, PrivateInfo};
use ppchecker_policy::VerbCategory;
use std::fmt;

/// Which evidence channel detected a problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Channel {
    /// Contrasted against the app's description (AutoCog side).
    Description,
    /// Contrasted against the app's bytecode (static-analysis side).
    Code,
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Channel::Description => "description",
            Channel::Code => "code",
        })
    }
}

/// One record of information missed by an incomplete privacy policy.
#[derive(Debug, Clone, PartialEq)]
pub struct MissedInfo {
    /// The missed information.
    pub info: PrivateInfo,
    /// How it was detected.
    pub channel: Channel,
    /// For description-channel findings: the permission whose inference
    /// exposed the gap (Table III keys on this).
    pub permission: Option<Permission>,
    /// For code-channel findings: `true` when the information is also
    /// *retained* (flows to a sink), not merely collected.
    pub retained: bool,
}

/// One incorrect-policy finding: the policy denies a behaviour the app
/// performs.
#[derive(Debug, Clone, PartialEq)]
pub struct IncorrectFinding {
    /// The information whose denial is contradicted.
    pub info: PrivateInfo,
    /// How the contradiction was established.
    pub channel: Channel,
    /// The offending negative policy sentence.
    pub sentence: String,
    /// The denied behaviour's category.
    pub category: VerbCategory,
}

/// One inconsistency between the app's policy and a third-party lib's
/// policy.
#[derive(Debug, Clone, PartialEq)]
pub struct Inconsistency {
    /// The library whose policy conflicts.
    pub lib_id: String,
    /// Shared verb category of the two sentences.
    pub category: VerbCategory,
    /// The app's negative sentence.
    pub app_sentence: String,
    /// The lib's positive sentence.
    pub lib_sentence: String,
    /// The conflicting resource (app side).
    pub app_resource: String,
    /// The conflicting resource (lib side).
    pub lib_resource: String,
}

/// The full PPChecker report for one app.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// App package name.
    pub package: String,
    /// Incomplete-policy findings.
    pub missed: Vec<MissedInfo>,
    /// Incorrect-policy findings.
    pub incorrect: Vec<IncorrectFinding>,
    /// Inconsistent-policy findings.
    pub inconsistencies: Vec<Inconsistency>,
    /// Detected third-party library ids.
    pub libs: Vec<String>,
    /// `true` if the app policy disclaims third-party responsibility
    /// (suppresses inconsistency findings).
    pub has_disclaimer: bool,
    /// Findings from detectors beyond the paper's three (Data-Safety,
    /// purpose, boilerplate, and any custom detector). Empty under the
    /// default registry, keeping the classic report unchanged.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Is the policy incomplete?
    pub fn is_incomplete(&self) -> bool {
        !self.missed.is_empty()
    }

    /// Is the policy incorrect?
    pub fn is_incorrect(&self) -> bool {
        !self.incorrect.is_empty()
    }

    /// Is the policy inconsistent with a lib policy?
    pub fn is_inconsistent(&self) -> bool {
        !self.inconsistencies.is_empty()
    }

    /// Does the policy have at least one kind of problem (the headline
    /// 23.6% statistic counts these)?
    pub fn has_any_problem(&self) -> bool {
        self.is_incomplete() || self.is_incorrect() || self.is_inconsistent()
    }

    /// Missed-info records detected through the description.
    pub fn missed_via_description(&self) -> impl Iterator<Item = &MissedInfo> {
        self.missed.iter().filter(|m| m.channel == Channel::Description)
    }

    /// Missed-info records detected through code.
    pub fn missed_via_code(&self) -> impl Iterator<Item = &MissedInfo> {
        self.missed.iter().filter(|m| m.channel == Channel::Code)
    }

    /// Number of findings this detector contributed (paper detectors
    /// count their classic vectors; the rest count [`Report::findings`]).
    pub fn detector_findings(&self, id: DetectorId) -> usize {
        match id {
            DetectorId::Incomplete => self.missed.len(),
            DetectorId::Incorrect => self.incorrect.len(),
            DetectorId::Inconsistent => self.inconsistencies.len(),
            _ => self.findings.iter().filter(|f| f.detector == id).count(),
        }
    }

    /// Folds a detector run into the report: paper payloads land in the
    /// classic vectors (preserving their exact pre-registry shape), the
    /// rest in [`Report::findings`], all in detector run order.
    pub(crate) fn absorb_findings(&mut self, findings: Vec<Finding>) {
        for finding in findings {
            match finding.payload {
                FindingPayload::Missed(m) => self.missed.push(m),
                FindingPayload::Incorrect(i) => self.incorrect.push(i),
                FindingPayload::Inconsistent(i) => self.inconsistencies.push(i),
                _ => self.findings.push(finding),
            }
        }
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "PPChecker report for {}", self.package)?;
        writeln!(f, "  incomplete: {} ({} records)", self.is_incomplete(), self.missed.len())?;
        for m in &self.missed {
            writeln!(
                f,
                "    missed {} via {}{}",
                m.info,
                m.channel,
                if m.retained { " (retained)" } else { "" }
            )?;
        }
        writeln!(f, "  incorrect: {} ({} findings)", self.is_incorrect(), self.incorrect.len())?;
        for i in &self.incorrect {
            writeln!(f, "    denies {} of {} but does it: \"{}\"", i.category, i.info, i.sentence)?;
        }
        writeln!(
            f,
            "  inconsistent: {} ({} findings)",
            self.is_inconsistent(),
            self.inconsistencies.len()
        )?;
        for i in &self.inconsistencies {
            writeln!(f, "    vs {}: app denies but lib declares {}", i.lib_id, i.category)?;
        }
        if !self.findings.is_empty() {
            writeln!(f, "  extended findings: {}", self.findings.len())?;
            for finding in &self.findings {
                match &finding.payload {
                    FindingPayload::DataSafety(d) => writeln!(
                        f,
                        "    [{}] {} for {}",
                        finding.detector,
                        d.kind.as_str(),
                        d.info
                    )?,
                    FindingPayload::Purpose(p) => writeln!(
                        f,
                        "    [{}] {} {} claim: \"{}\"",
                        finding.detector,
                        p.kind.as_str(),
                        p.purpose,
                        p.sentence
                    )?,
                    FindingPayload::Boilerplate(b) => writeln!(
                        f,
                        "    [{}] near-duplicate of {} (similarity {:.2})",
                        finding.detector, b.family, b.similarity
                    )?,
                    _ => writeln!(f, "    [{}] finding", finding.detector)?,
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_has_no_problem() {
        let r = Report::default();
        assert!(!r.has_any_problem());
    }

    #[test]
    fn missed_info_makes_incomplete() {
        let r = Report {
            missed: vec![MissedInfo {
                info: PrivateInfo::Location,
                channel: Channel::Code,
                permission: None,
                retained: false,
            }],
            ..Report::default()
        };
        assert!(r.is_incomplete());
        assert!(r.has_any_problem());
        assert_eq!(r.missed_via_code().count(), 1);
        assert_eq!(r.missed_via_description().count(), 0);
    }

    #[test]
    fn report_display_is_nonempty() {
        let r = Report { package: "com.x".to_string(), ..Report::default() };
        assert!(r.to_string().contains("com.x"));
    }
}
