//! The similarity matcher: ESA plus a configurable decision threshold.
//!
//! The paper adopts 0.67 following AutoCog; exposing the threshold lets
//! the benches study its precision/recall trade-off (see
//! `repro_threshold`).

use ppchecker_esa::{Interpreter, SIMILARITY_THRESHOLD};
use ppchecker_nlp::Symbol;

/// An ESA interpreter paired with a decision threshold.
#[derive(Debug, Clone, Copy)]
pub struct Matcher {
    esa: &'static Interpreter,
    threshold: f64,
}

impl Default for Matcher {
    fn default() -> Self {
        Matcher::new()
    }
}

impl Matcher {
    /// The paper's configuration: shared interpreter, threshold 0.67.
    pub fn new() -> Self {
        Matcher { esa: Interpreter::shared(), threshold: SIMILARITY_THRESHOLD }
    }

    /// Same interpreter, custom threshold (clamped to `[0, 1]`).
    pub fn with_threshold(threshold: f64) -> Self {
        Matcher { esa: Interpreter::shared(), threshold: threshold.clamp(0.0, 1.0) }
    }

    /// The active threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The underlying interpreter.
    pub fn esa(&self) -> &'static Interpreter {
        self.esa
    }

    /// The paper's "refer to the same thing" predicate.
    ///
    /// Routed through the interpreter's pruned threshold predicate: pairs
    /// whose norm bound cannot reach the threshold are rejected without a
    /// dot product, with the exact cosine as fallback — the verdict is
    /// identical to comparing [`Interpreter::similarity`] by hand.
    pub fn same_thing(&self, a: &str, b: &str) -> bool {
        self.esa.same_thing_at(a, b, self.threshold)
    }

    /// [`same_thing`] over interned symbols: identical symbols short-circuit,
    /// both concept vectors come from the symbol-keyed memo, and (at the
    /// paper threshold) repeat pairs are answered from the interpreter's
    /// sharded pair-verdict memo.
    ///
    /// [`same_thing`]: Matcher::same_thing
    pub fn same_thing_sym(&self, a: Symbol, b: Symbol) -> bool {
        a == b || self.esa.same_thing_sym_at(a, b, self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_threshold() {
        let m = Matcher::new();
        assert!((m.threshold() - 0.67).abs() < 1e-12);
        assert!(m.same_thing("location", "gps location"));
        assert!(!m.same_thing("location", "calendar"));
    }

    #[test]
    fn lower_threshold_is_more_permissive() {
        let strict = Matcher::with_threshold(0.95);
        let loose = Matcher::with_threshold(0.3);
        // A related-but-not-identical pair flips between the two.
        let (a, b) = ("location", "latitude");
        assert!(loose.same_thing(a, b));
        assert!(!strict.same_thing(a, b) || strict.esa().similarity(a, b) >= 0.95);
    }

    #[test]
    fn symbol_predicate_matches_string_predicate() {
        use ppchecker_nlp::intern;
        let m = Matcher::new();
        for (a, b) in
            [("location", "gps location"), ("location", "calendar"), ("device id", "device id")]
        {
            assert_eq!(m.same_thing_sym(intern(a), intern(b)), m.same_thing(a, b));
        }
    }

    #[test]
    fn threshold_is_clamped() {
        assert_eq!(Matcher::with_threshold(7.0).threshold(), 1.0);
        assert_eq!(Matcher::with_threshold(-1.0).threshold(), 0.0);
    }
}
