//! Per-thread, per-app bump arena for the checker's short-lived strings.
//!
//! The detectors build dedup keys (and similar app-scoped transients)
//! whose lifetime is exactly one [`crate::PPChecker::check`] call. Each
//! engine worker thread owns one [`Bump`] here; the checker resets it at
//! the top of every pipeline run, so after the first app on a thread the
//! keys are pure pointer bumps into retained capacity — this is how the
//! arena is "threaded" checker → engine without touching any public
//! signature or report type.

use ppchecker_arena::Bump;
use std::cell::RefCell;

thread_local! {
    static APP_ARENA: RefCell<Bump> = RefCell::new(Bump::new());
}

/// Runs `f` with the calling thread's app arena. Do not call
/// [`reset_app_arena`] from inside `f` (the `RefCell` would panic);
/// allocated `&str`s must not escape the closure.
pub(crate) fn with_app_arena<R>(f: impl FnOnce(&Bump) -> R) -> R {
    APP_ARENA.with(|arena| f(&arena.borrow()))
}

/// Drops the current app's arena strings, keeping capacity for the next
/// app. Called once per pipeline run.
pub(crate) fn reset_app_arena() {
    APP_ARENA.with(|arena| arena.borrow_mut().reset());
}

/// `(allocated, capacity)` of this thread's arena, for metrics and tests.
#[allow(dead_code)]
pub(crate) fn app_arena_stats() -> (usize, usize) {
    APP_ARENA.with(|arena| {
        let arena = arena.borrow();
        (arena.allocated(), arena.capacity())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_resets_between_apps_and_retains_capacity() {
        reset_app_arena();
        with_app_arena(|bump| {
            for i in 0..100 {
                bump.alloc_str(&format!("sentence {i} repeated for sizing purposes"));
            }
        });
        let (allocated, _) = app_arena_stats();
        assert!(allocated > 0);
        reset_app_arena();
        let (allocated, capacity) = app_arena_stats();
        assert_eq!(allocated, 0);
        assert!(capacity > 0, "reset keeps warm capacity");
    }
}
