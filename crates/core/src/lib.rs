//! # ppchecker-core
//!
//! The problem-identification module and orchestrator of the PPChecker
//! reproduction (Yu et al., *Can We Trust the Privacy Policies of Android
//! Apps?*, DSN 2016).
//!
//! PPChecker takes an app's privacy policy, description, and APK plus the
//! privacy policies of known third-party libraries, and reports three
//! kinds of problems:
//!
//! - **Incomplete** ([`incomplete`], Algorithms 1–2): the policy fails to
//!   cover information the description implies or the bytecode collects or
//!   retains.
//! - **Incorrect** ([`incorrect`], Algorithms 3–4): the policy denies a
//!   behaviour the app performs.
//! - **Inconsistent** ([`inconsistent`], Algorithm 5): the policy denies a
//!   behaviour an embedded third-party lib's policy declares.
//!
//! See [`PPChecker`] for the end-to-end entry point.

pub mod checker;
pub mod detector;
pub mod error;
pub mod incomplete;
pub mod inconsistent;
pub mod incorrect;
pub mod matcher;
pub mod minhash;
pub mod problems;
pub(crate) mod scratch;
pub mod suggest;
pub mod wire;

pub use checker::{
    AppInput, CheckError, CheckOutcome, CheckRequest, CheckRequestBuilder, PPChecker, StageSpan,
    StageTimings,
};
pub use detector::{
    BoilerplateFinding, DataSafetyFinding, DataSafetyKind, DataSafetyLabel, Detector, DetectorCtx,
    DetectorId, DetectorRegistry, Finding, FindingPayload, PurposeFinding, PurposeKind,
};
pub use error::{Error, Stage};
// Part of `PurposeFinding`'s public shape; re-exported so downstream
// crates can name it without a direct ppchecker-policy dependency.
pub use matcher::Matcher;
pub use minhash::BoilerplateIndex;
pub use ppchecker_policy::Purpose;
pub use problems::{Channel, Inconsistency, IncorrectFinding, MissedInfo, Report};
pub use suggest::{describe_leak, suggest_fixes, EditKind, Suggestion};
pub use wire::{decode_report, encode_report};
