//! The workspace-wide error type returned by the unified check entry
//! point ([`crate::PPChecker::check`]) and carried per-app through the
//! batch engine, with a [`stage()`](Error::stage) accessor naming the
//! pipeline stage that failed.

use crate::checker::CheckError;
use ppchecker_apk::ParseDexError;
use std::fmt;

/// The pipeline stage an [`Error`] came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Loading or constructing the app's inputs (corpus I/O, manifest
    /// parsing) — before the pipeline proper.
    Input,
    /// Policy analysis (HTML → `PolicyAnalysis`).
    Policy,
    /// Description analysis.
    Description,
    /// Static analysis (unpack + APG + taint).
    StaticAnalysis,
    /// Matching + Algorithms 1–5.
    Matching,
    /// The batch runtime itself (worker panic, scheduling).
    Batch,
}

impl Stage {
    /// Stable lowercase name, matching the span names in traces.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Input => "input",
            Stage::Policy => "policy",
            Stage::Description => "description",
            Stage::StaticAnalysis => "static",
            Stage::Matching => "matching",
            Stage::Batch => "batch",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Any failure the pipeline or batch runtime can report for one app.
///
/// One type flows from the unified [`crate::PPChecker::check`] entry
/// point through the engine's per-app records to the CLI, so callers
/// match on structure (and [`stage()`](Error::stage)) instead of
/// scraping strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The pipeline itself failed (today: dex recovery).
    Check(CheckError),
    /// The app's inputs could not be loaded or were malformed.
    Input(String),
    /// A batch worker died while processing the app (panic payload).
    Worker(String),
}

impl Error {
    /// An input-loading failure.
    pub fn input(message: impl Into<String>) -> Self {
        Error::Input(message.into())
    }

    /// A batch-worker failure.
    pub fn worker(message: impl Into<String>) -> Self {
        Error::Worker(message.into())
    }

    /// The stage this error came from.
    pub fn stage(&self) -> Stage {
        match self {
            Error::Check(CheckError::Dex(_)) => Stage::StaticAnalysis,
            Error::Input(_) => Stage::Input,
            Error::Worker(_) => Stage::Batch,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Check(e) => write!(f, "{e}"),
            Error::Input(m) => write!(f, "input error: {m}"),
            Error::Worker(m) => write!(f, "worker failure: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Check(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckError> for Error {
    fn from(e: CheckError) -> Self {
        Error::Check(e)
    }
}

impl From<ParseDexError> for Error {
    fn from(e: ParseDexError) -> Self {
        Error::Check(CheckError::Dex(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_have_stable_names() {
        assert_eq!(Stage::StaticAnalysis.as_str(), "static");
        assert_eq!(Stage::Batch.to_string(), "batch");
    }

    #[test]
    fn check_error_display_is_preserved() {
        let dex = ParseDexError { line: 3, message: "truncated payload".to_string() };
        let check = CheckError::from(dex.clone());
        let unified = Error::from(dex);
        assert_eq!(unified.to_string(), check.to_string());
        assert!(unified.to_string().contains("static analysis failed"));
        assert_eq!(unified.stage(), Stage::StaticAnalysis);
    }

    #[test]
    fn input_and_worker_errors_carry_their_stage() {
        assert_eq!(Error::input("missing policy.html").stage(), Stage::Input);
        assert_eq!(Error::worker("panicked").stage(), Stage::Batch);
        assert!(Error::input("x").to_string().contains("input error"));
        assert!(Error::worker("x").to_string().contains("worker failure"));
    }
}
