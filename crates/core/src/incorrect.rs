//! Discovering incorrect privacy policies (Algorithms 3 and 4).
//!
//! A policy is incorrect when a *negative* sentence denies a behaviour the
//! app performs: the denial is contradicted by the description (Algorithm
//! 3) or by the bytecode (Algorithm 4: `NotCollect_PP` vs `Collect_code`
//! and `NotRetain_PP` vs `Retain_code`).

use crate::matcher::Matcher;
use crate::problems::{Channel, IncorrectFinding};
use ppchecker_apk::PrivateInfo;
use ppchecker_desc::DescriptionAnalysis;
use ppchecker_nlp::{intern, Symbol};
use ppchecker_policy::{PolicyAnalysis, VerbCategory};
use ppchecker_static::StaticReport;

/// Algorithm 3: denial contradicted by the description.
///
/// For every piece of information inferred from the description, flag any
/// negative sentence (in any category) whose resource matches it.
pub fn via_description(
    policy: &PolicyAnalysis,
    desc: &DescriptionAnalysis,
    esa: &Matcher,
) -> Vec<IncorrectFinding> {
    let mut out = Vec::new();
    for &info in &desc.info {
        let info_sym = intern(info.canonical_phrase());
        for sent in policy.negative_sentences() {
            for &res in sent.resource_symbols() {
                if esa.same_thing_sym(info_sym, res) {
                    out.push(IncorrectFinding {
                        info,
                        channel: Channel::Description,
                        sentence: sent.text.clone(),
                        category: sent.category,
                    });
                }
            }
        }
    }
    dedup(out)
}

/// Algorithm 4: denial contradicted by the bytecode.
///
/// `NotCollect_PP`/`NotUse_PP` vs `Collect_code`, and `NotRetain_PP` vs
/// `Retain_code`.
pub fn via_code(
    policy: &PolicyAnalysis,
    code: &StaticReport,
    esa: &Matcher,
) -> Vec<IncorrectFinding> {
    let mut out = Vec::new();
    // Canonical phrases are preseeded in the interner; still, resolve each
    // info's symbol once up front instead of once per negative sentence.
    let with_syms = |infos: std::collections::BTreeSet<PrivateInfo>| -> Vec<(PrivateInfo, Symbol)> {
        infos.into_iter().map(|i| (i, intern(i.canonical_phrase()))).collect()
    };
    let collected = with_syms(code.collect_code());
    let retained = with_syms(code.retain_code());
    for sent in policy.negative_sentences() {
        // "we will not collect/use X" is refuted by Collect_code; "we will
        // not store/transmit X" only by X actually reaching a sink.
        let code_infos: &[(PrivateInfo, Symbol)] = match sent.category {
            VerbCategory::Collect | VerbCategory::Use => &collected,
            VerbCategory::Retain | VerbCategory::Disclose => &retained,
        };
        for &(info, info_sym) in code_infos {
            for &res in sent.resource_symbols() {
                if esa.same_thing_sym(info_sym, res) {
                    out.push(IncorrectFinding {
                        info,
                        channel: Channel::Code,
                        sentence: sent.text.clone(),
                        category: sent.category,
                    });
                }
            }
        }
    }
    dedup(out)
}

fn dedup(mut v: Vec<IncorrectFinding>) -> Vec<IncorrectFinding> {
    // Keys copy into the per-app arena instead of per-key heap Strings:
    // the arena outlives the retain scan and resets with the next app.
    crate::scratch::with_app_arena(|bump| {
        let mut seen: Vec<(PrivateInfo, VerbCategory, &str)> = Vec::new();
        v.retain(|f| {
            let dup =
                seen.iter().any(|&(i, c, s)| i == f.info && c == f.category && s == f.sentence);
            if !dup {
                seen.push((f.info, f.category, bump.alloc_str(&f.sentence)));
            }
            !dup
        });
    });
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppchecker_apk::{Apk, ComponentKind, Dex, Manifest};
    use ppchecker_desc::analyze_description;
    use ppchecker_policy::PolicyAnalyzer;

    fn esa() -> Matcher {
        Matcher::new()
    }

    #[test]
    fn birthdaylist_case_via_description() {
        // §V-D: com.marcow.birthdaylist denies collecting contacts but its
        // description says it synchronizes birthdays with the contact list.
        let policy = PolicyAnalyzer::new().analyze_text(
            "We are not collecting your date of birth, phone number, name or other personal \
             information, nor those of your contacts.",
        );
        let desc = analyze_description(
            "This app synchronizes all birthdays with your contacts list and facebook.",
        );
        let findings = via_description(&policy, &desc, &esa());
        assert!(findings.iter().any(|f| f.info == PrivateInfo::Contact));
    }

    #[test]
    fn consistent_denial_not_flagged_via_description() {
        let policy = PolicyAnalyzer::new().analyze_text("We will not collect your location.");
        let desc = analyze_description("Edit your photos with beautiful filters.");
        assert!(via_description(&policy, &desc, &esa()).is_empty());
    }

    fn app_collecting_contacts_and_logging() -> StaticReport {
        let mut manifest = Manifest::new("com.easyxapp.secret");
        manifest.add_component(ComponentKind::Activity, "com.easyxapp.secret.Main", true);
        let dex = Dex::builder()
            .class("com.easyxapp.secret.Main", |c| {
                c.method("onCreate", 1, |m| {
                    m.field_get(
                        "android.provider.ContactsContract$CommonDataKinds$Phone",
                        "CONTENT_URI",
                        1,
                    );
                    m.invoke_virtual("android.content.ContentResolver", "query", &[0, 1], Some(2));
                    m.invoke_static("android.util.Log", "i", &[2], None);
                });
            })
            .build();
        ppchecker_static::analyze(&Apk::new(manifest, dex)).unwrap()
    }

    #[test]
    fn easyxapp_case_via_code() {
        // §II-B / §V-D: policy says "we will not store your real phone
        // number, name and contacts", code retains contacts into the log.
        let report = app_collecting_contacts_and_logging();
        let policy = PolicyAnalyzer::new()
            .analyze_text("We will not store your real phone number, name and contacts.");
        let findings = via_code(&policy, &report, &esa());
        assert!(findings
            .iter()
            .any(|f| f.info == PrivateInfo::Contact && f.channel == Channel::Code));
    }

    #[test]
    fn not_collect_refuted_by_collect_code() {
        let report = app_collecting_contacts_and_logging();
        let policy = PolicyAnalyzer::new().analyze_text("We do not collect your contacts.");
        let findings = via_code(&policy, &report, &esa());
        assert!(findings.iter().any(|f| f.info == PrivateInfo::Contact));
    }

    #[test]
    fn denial_of_unperformed_behaviour_is_fine() {
        let report = app_collecting_contacts_and_logging();
        let policy =
            PolicyAnalyzer::new().analyze_text("We will not collect your calendar events.");
        assert!(via_code(&policy, &report, &esa()).is_empty());
    }

    #[test]
    fn not_retain_needs_actual_retention() {
        // App only *collects* location (no sink): "we will not store your
        // location" is not refuted.
        let mut manifest = Manifest::new("com.x");
        manifest.add_component(ComponentKind::Activity, "com.x.Main", true);
        let dex = Dex::builder()
            .class("com.x.Main", |c| {
                c.method("onCreate", 1, |m| {
                    m.invoke_virtual("android.location.Location", "getLatitude", &[0], Some(1));
                });
            })
            .build();
        let report = ppchecker_static::analyze(&Apk::new(manifest, dex)).unwrap();
        let policy = PolicyAnalyzer::new().analyze_text("We will not store your location.");
        assert!(via_code(&policy, &report, &esa()).is_empty());
    }
}
