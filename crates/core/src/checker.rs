//! The PPChecker orchestrator: wires the policy, description, and static
//! analysis modules through the problem-identification algorithms.

use crate::detector::{DataSafetyLabel, DetectorCtx, DetectorId, DetectorRegistry};
use crate::error::Error;
use crate::matcher::Matcher;
use crate::minhash::BoilerplateIndex;
use crate::problems::Report;
use ppchecker_apk::{Apk, ParseDexError};
use ppchecker_desc::analyze_description_with;
use ppchecker_obs::SpanGuard;
use ppchecker_policy::{PolicyAnalysis, PolicyAnalyzer};
use ppchecker_static::{analyze_with_cache, AnalysisOptions, TaintSummaryCache};
use std::collections::HashMap;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;
use std::time::Duration;

/// Everything PPChecker needs about one app: the policy, the description,
/// and the APK (Fig. 4's inputs; third-party lib policies are registered
/// on the checker itself), plus the optional structured Data-Safety
/// label declarations the successor-literature detector cross-checks.
#[derive(Debug, Clone)]
pub struct AppInput {
    /// Package name, e.g. `com.dooing.dooing`.
    pub package: String,
    /// The privacy policy, as HTML.
    pub policy_html: String,
    /// The Google Play description.
    pub description: String,
    /// The APK.
    pub apk: Apk,
    /// Structured Data-Safety label declarations. Empty for apps that
    /// declare none (the `data-safety` detector then declines to run).
    pub labels: Vec<DataSafetyLabel>,
}

impl AppInput {
    /// A stable fingerprint of the label declarations (0 when none are
    /// declared). Batch stores fold this into the per-app report key so
    /// editing an app's labels invalidates its stored report.
    pub fn labels_fingerprint(&self) -> u64 {
        if self.labels.is_empty() {
            return 0;
        }
        let parts: Vec<u64> = self
            .labels
            .iter()
            .map(|l| ppchecker_store::content_hash(l.info.canonical_phrase().as_bytes()))
            .collect();
        ppchecker_store::combine_hashes(&parts)
    }
}

/// Error from a full check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// The APK's dex could not be recovered.
    Dex(ParseDexError),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Dex(e) => write!(f, "static analysis failed: {e}"),
        }
    }
}

impl std::error::Error for CheckError {}

impl From<ParseDexError> for CheckError {
    fn from(e: ParseDexError) -> Self {
        CheckError::Dex(e)
    }
}

/// Wall time spent in each stage of one [`PPChecker::check`] call.
///
/// The four stages mirror Fig. 4: policy NLP, description analysis,
/// static analysis, and the matching/problem-identification algorithms.
/// Since the obs integration this is a thin view over the pipeline's
/// `check.*` spans: each duration is what the corresponding
/// [`SpanGuard`] measured, so the same numbers land in the
/// `ppchecker-obs` histograms whenever metrics are enabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Policy-analysis stage (HTML → [`PolicyAnalysis`]). Zero when a
    /// batch runtime served the analysis from its artifact cache.
    pub policy: Duration,
    /// Description-analysis stage.
    pub description: Duration,
    /// Static-analysis stage (unpack + APG + taint).
    pub static_analysis: Duration,
    /// Matching + Algorithms 1–5.
    pub matching: Duration,
}

impl StageTimings {
    /// Sum of all stages.
    pub fn total(&self) -> Duration {
        self.policy + self.description + self.static_analysis + self.matching
    }

    /// Component-wise sum (for cross-app aggregation).
    pub fn accumulate(&mut self, other: &StageTimings) {
        self.policy += other.policy;
        self.description += other.description;
        self.static_analysis += other.static_analysis;
        self.matching += other.matching;
    }
}

/// The policy-analysis source a [`CheckRequest`] can plug in (batch
/// runtimes pass their content-addressed cache here).
type PolicyProvider<'a> = Box<dyn FnOnce(&PolicyAnalyzer, &str) -> Arc<PolicyAnalysis> + 'a>;

/// A built request for one [`PPChecker::check`] call.
///
/// Built through [`CheckRequest::builder`]; the plain form stays a
/// one-liner via [`PPChecker::check_app`]. Extras chain off the
/// builder:
///
/// ```no_run
/// # use ppchecker_core::{AppInput, CheckRequest, PPChecker};
/// # use std::sync::Arc;
/// # fn demo(checker: &PPChecker, app: &AppInput) -> Result<(), ppchecker_core::Error> {
/// let outcome = checker.check(
///     CheckRequest::builder(app)
///         .policy_provider(|analyzer, html| Arc::new(analyzer.analyze_html(html)))
///         .capture_timings()
///         .build(),
/// )?;
/// println!("{} in {:?}", outcome.report.package, outcome.timings.unwrap().total());
/// # Ok(())
/// # }
/// ```
///
/// `#[non_exhaustive]`: requests grow knobs across revisions; build
/// them only through the builder.
#[non_exhaustive]
pub struct CheckRequest<'a> {
    app: &'a AppInput,
    provide_policy: Option<PolicyProvider<'a>>,
    capture_timings: bool,
    capture_trace: bool,
    detectors: Option<Vec<DetectorId>>,
}

impl<'a> CheckRequest<'a> {
    /// Starts a request for one app. Defaults: the checker's own policy
    /// analysis, no captures, every registered detector.
    pub fn builder(app: &'a AppInput) -> CheckRequestBuilder<'a> {
        CheckRequestBuilder {
            request: CheckRequest {
                app,
                provide_policy: None,
                capture_timings: false,
                capture_trace: false,
                detectors: None,
            },
        }
    }

    /// The app under check.
    pub fn app(&self) -> &AppInput {
        self.app
    }

    /// The requested detector selection; `None` means every registered
    /// detector.
    pub fn detectors(&self) -> Option<&[DetectorId]> {
        self.detectors.as_deref()
    }
}

/// Builder for [`CheckRequest`] (see [`CheckRequest::builder`]).
pub struct CheckRequestBuilder<'a> {
    request: CheckRequest<'a>,
}

impl<'a> CheckRequestBuilder<'a> {
    /// Plugs in a policy-analysis source. Batch runtimes pass a
    /// content-addressed cache so duplicate policy texts (and the fixed
    /// set of third-party lib policies) are parsed once per run; the
    /// default calls [`PolicyAnalyzer::analyze_html`].
    pub fn policy_provider<F>(mut self, provide_policy: F) -> Self
    where
        F: FnOnce(&PolicyAnalyzer, &str) -> Arc<PolicyAnalysis> + 'a,
    {
        self.request.provide_policy = Some(Box::new(provide_policy));
        self
    }

    /// Asks for per-stage wall time in [`CheckOutcome::timings`]. A
    /// cached policy analysis shows up as a near-zero `policy` stage.
    pub fn capture_timings(mut self) -> Self {
        self.request.capture_timings = true;
        self
    }

    /// Asks for the executed stage spans (name + duration, in execution
    /// order) in [`CheckOutcome::trace`].
    pub fn capture_trace(mut self) -> Self {
        self.request.capture_trace = true;
        self
    }

    /// Restricts this check to the given detectors (they must also be
    /// registered on the checker; selection never adds detectors).
    pub fn detectors(mut self, ids: &[DetectorId]) -> Self {
        self.request.detectors = Some(ids.to_vec());
        self
    }

    /// Finishes the request.
    pub fn build(self) -> CheckRequest<'a> {
        self.request
    }
}

impl fmt::Debug for CheckRequest<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckRequest")
            .field("app", &self.app.package)
            .field("custom_policy_provider", &self.provide_policy.is_some())
            .field("capture_timings", &self.capture_timings)
            .field("capture_trace", &self.capture_trace)
            .field("detectors", &self.detectors)
            .finish()
    }
}

/// One executed pipeline stage: its span name and wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSpan {
    /// The obs span name (`check.policy`, `check.description`,
    /// `check.static`, `check.matching`).
    pub name: &'static str,
    /// Wall time the stage took.
    pub duration: Duration,
}

/// What one [`PPChecker::check`] call produced.
///
/// Dereferences to the [`Report`], so existing call sites keep reading
/// `outcome.is_incomplete()`, `outcome.missed`, `format!("{outcome}")`,
/// or passing `&outcome` where a `&Report` is expected.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// The problem report (Algorithms 1–5).
    pub report: Report,
    /// Per-stage wall time, when the request
    /// [asked for it](CheckRequestBuilder::capture_timings).
    pub timings: Option<StageTimings>,
    /// Executed stage spans in order, when the request
    /// [asked for them](CheckRequestBuilder::capture_trace).
    pub trace: Option<Vec<StageSpan>>,
}

impl CheckOutcome {
    /// Consumes the outcome, keeping only the report.
    pub fn into_report(self) -> Report {
        self.report
    }

    /// The problem report.
    pub fn report(&self) -> &Report {
        &self.report
    }
}

impl Deref for CheckOutcome {
    type Target = Report;

    fn deref(&self) -> &Report {
        &self.report
    }
}

impl fmt::Display for CheckOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.report.fmt(f)
    }
}

/// The PPChecker system.
///
/// # Thread safety
///
/// `PPChecker` is `Send + Sync`: every field is immutable after
/// construction ([`PolicyAnalyzer`] holds plain pattern data, [`Matcher`]
/// a `&'static` ESA interpreter, and the lib-policy map is only written
/// through `&mut self` registration). A batch runtime therefore shares
/// one checker across workers behind an `Arc` — register all lib
/// policies *first*, then wrap; per-app state (the [`Report`] under
/// construction, stage timers) lives on the worker's stack.
///
/// # Examples
///
/// ```
/// use ppchecker_core::{AppInput, PPChecker};
/// use ppchecker_apk::{Apk, ComponentKind, Dex, Manifest, Permission};
///
/// let mut manifest = Manifest::new("com.example.weather");
/// manifest.add_permission(Permission::AccessFineLocation);
/// manifest.add_component(ComponentKind::Activity, "com.example.weather.Main", true);
/// let dex = Dex::builder()
///     .class("com.example.weather.Main", |c| {
///         c.method("onCreate", 1, |m| {
///             m.invoke_virtual("android.location.Location", "getLatitude", &[0], Some(1));
///         });
///     })
///     .build();
///
/// let app = AppInput {
///     package: "com.example.weather".into(),
///     policy_html: "<p>We collect your email address.</p>".into(),
///     description: "Accurate weather for your location.".into(),
///     apk: Apk::new(manifest, dex),
///     labels: Vec::new(),
/// };
/// let report = PPChecker::new().check_app(&app)?;
/// assert!(report.is_incomplete()); // location is collected but never mentioned
/// # Ok::<(), ppchecker_core::Error>(())
/// ```
#[derive(Debug)]
pub struct PPChecker {
    analyzer: PolicyAnalyzer,
    matcher: Matcher,
    lib_policies: HashMap<String, PolicyAnalysis>,
    static_options: AnalysisOptions,
    taint_cache: Option<Arc<TaintSummaryCache>>,
    registry: DetectorRegistry,
    boilerplate: Option<Arc<BoilerplateIndex>>,
}

impl Default for PPChecker {
    fn default() -> Self {
        PPChecker::new()
    }
}

impl PPChecker {
    /// A checker with the default policy analyzer, ESA interpreter, and
    /// detector registry (the paper's three detectors).
    pub fn new() -> Self {
        PPChecker {
            analyzer: PolicyAnalyzer::new(),
            matcher: Matcher::new(),
            lib_policies: HashMap::new(),
            static_options: AnalysisOptions::default(),
            taint_cache: None,
            registry: DetectorRegistry::paper(),
            boilerplate: None,
        }
    }

    /// Replaces the policy analyzer (e.g. with freshly bootstrapped
    /// patterns).
    pub fn with_analyzer(mut self, analyzer: PolicyAnalyzer) -> Self {
        self.analyzer = analyzer;
        self
    }

    /// Sets the static-analysis ablation options.
    pub fn with_static_options(mut self, options: AnalysisOptions) -> Self {
        self.static_options = options;
        self
    }

    /// Overrides the ESA similarity threshold (the paper uses 0.67).
    pub fn with_similarity_threshold(mut self, threshold: f64) -> Self {
        self.matcher = Matcher::with_threshold(threshold);
        self
    }

    /// Attaches a cross-app library taint-summary cache. Batch runtimes
    /// share one cache across every app so the taint kernel summarizes
    /// each distinct embedded lib once per run; leak results are
    /// unchanged (the cache only skips recomputation).
    pub fn with_taint_summary_cache(mut self, cache: Arc<TaintSummaryCache>) -> Self {
        self.taint_cache = Some(cache);
        self
    }

    /// Replaces the detector registry outright (for custom detectors;
    /// to select among the built-ins use [`with_detectors`](Self::with_detectors)).
    pub fn with_registry(mut self, registry: DetectorRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Runs exactly these built-in detectors.
    pub fn with_detectors(mut self, ids: &[DetectorId]) -> Self {
        self.registry = DetectorRegistry::with_ids(ids);
        self
    }

    /// Attaches the corpus-wide near-duplicate index the `boilerplate`
    /// detector probes. Batch runtimes share one index across the run.
    pub fn with_boilerplate_index(mut self, index: Arc<BoilerplateIndex>) -> Self {
        self.boilerplate = Some(index);
        self
    }

    /// The detector registry in use.
    pub fn registry(&self) -> &DetectorRegistry {
        &self.registry
    }

    /// Registers a third-party lib's privacy policy (HTML) under its id.
    pub fn register_lib_policy(&mut self, lib_id: &str, policy_html: &str) {
        let analysis = self.analyzer.analyze_html(policy_html);
        self.lib_policies.insert(lib_id.to_string(), analysis);
    }

    /// Registers an already-analyzed lib policy (e.g. served from a batch
    /// runtime's artifact cache, so the HTML is parsed once per run even
    /// when it is also some app's own policy text).
    pub fn register_lib_policy_analysis(&mut self, lib_id: &str, analysis: PolicyAnalysis) {
        self.lib_policies.insert(lib_id.to_string(), analysis);
    }

    /// Number of registered lib policies.
    pub fn lib_policy_count(&self) -> usize {
        self.lib_policies.len()
    }

    /// The policy analyzer in use.
    pub fn analyzer(&self) -> &PolicyAnalyzer {
        &self.analyzer
    }

    /// Runs the complete PPChecker pipeline on one app with the default
    /// request (see [`check`](Self::check) for the configurable form).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Check`] (wrapping [`CheckError::Dex`]) when a
    /// packed dex cannot be recovered.
    pub fn check_app(&self, app: &AppInput) -> Result<CheckOutcome, Error> {
        self.check(CheckRequest::builder(app).build())
    }

    /// Runs the complete PPChecker pipeline on one app, as configured by
    /// the request (built via [`CheckRequest::builder`]): policy
    /// provider, timing/trace capture, and detector selection.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Check`] (wrapping [`CheckError::Dex`]) when a
    /// packed dex cannot be recovered.
    pub fn check(&self, request: CheckRequest<'_>) -> Result<CheckOutcome, Error> {
        // Resolve the detector set while the request is still whole —
        // `applies` sees the full request, including the app's labels.
        let active = self.registry.active_ids(&request);
        let (report, timings) = self.run_pipeline(request.app, request.provide_policy, &active)?;
        Ok(CheckOutcome {
            report,
            timings: request.capture_timings.then_some(timings),
            trace: request.capture_trace.then(|| {
                vec![
                    StageSpan { name: "check.policy", duration: timings.policy },
                    StageSpan { name: "check.description", duration: timings.description },
                    StageSpan { name: "check.static", duration: timings.static_analysis },
                    StageSpan { name: "check.matching", duration: timings.matching },
                ]
            }),
        })
    }

    /// A stable fingerprint of everything that shapes this checker's
    /// verdicts: the policy analyzer's pattern configuration, the ESA
    /// similarity threshold, the static-analysis options, and every
    /// registered lib policy. The artifact store folds this into each
    /// per-app report key, so a stored report is never replayed across a
    /// configuration change — a new pattern set, a different threshold,
    /// or an added lib policy all produce fresh keys and a recompute.
    pub fn config_fingerprint(&self) -> u64 {
        let mut parts = vec![
            self.analyzer.fingerprint(),
            self.matcher.threshold().to_bits(),
            u64::from(self.static_options.reachability),
            u64::from(self.static_options.uri_analysis),
            self.registry.fingerprint(),
            match &self.boilerplate {
                Some(index) => index.threshold().to_bits(),
                None => 0,
            },
        ];
        let mut libs: Vec<(&String, &PolicyAnalysis)> = self.lib_policies.iter().collect();
        libs.sort_by_key(|(id, _)| id.as_str());
        for (id, analysis) in libs {
            parts.push(ppchecker_store::content_hash(id.as_bytes()));
            parts.push(ppchecker_store::content_hash(&ppchecker_policy::encode_analysis(analysis)));
        }
        ppchecker_store::combine_hashes(&parts)
    }

    /// The pipeline proper. Each stage runs under an always-timed obs
    /// span (`check.*`): the measured duration both populates
    /// [`StageTimings`] and — when `ppchecker_obs::set_enabled(true)` —
    /// lands in the registry histogram of the same name, with `B`/`E`
    /// trace events when tracing is on.
    fn run_pipeline(
        &self,
        app: &AppInput,
        provide_policy: Option<PolicyProvider<'_>>,
        active: &[DetectorId],
    ) -> Result<(Report, StageTimings), CheckError> {
        // One app, one arena: everything the detectors bump-allocate below
        // dies here, and the capacity stays warm for this worker thread's
        // next app.
        crate::scratch::reset_app_arena();
        let mut timings = StageTimings::default();

        let span = SpanGuard::timed("check.policy");
        let policy = match provide_policy {
            Some(provide) => provide(&self.analyzer, &app.policy_html),
            None => Arc::new(self.analyzer.analyze_html(&app.policy_html)),
        };
        timings.policy = span.finish();

        let span = SpanGuard::timed("check.description");
        let desc = analyze_description_with(&app.description, self.matcher.esa());
        timings.description = span.finish();

        let span = SpanGuard::timed("check.static");
        let code = analyze_with_cache(&app.apk, self.static_options, self.taint_cache.as_deref())?;
        timings.static_analysis = span.finish();

        let span = SpanGuard::timed("check.matching");
        let report = self.identify_problems(app, &policy, &desc, &code, active);
        timings.matching = span.finish();

        Ok((report, timings))
    }

    /// The detector registry over already-analyzed inputs. The paper
    /// detectors (Algorithms 1–5) fold into the classic report vectors;
    /// successor-literature findings land in [`Report::findings`].
    fn identify_problems(
        &self,
        app: &AppInput,
        policy: &PolicyAnalysis,
        desc: &ppchecker_desc::DescriptionAnalysis,
        code: &ppchecker_static::StaticReport,
        active: &[DetectorId],
    ) -> Report {
        let mut report = Report {
            package: app.package.clone(),
            has_disclaimer: policy.has_disclaimer,
            libs: code.libs.iter().map(|l| l.id.to_string()).collect(),
            ..Report::default()
        };
        let ctx = DetectorCtx {
            app,
            policy,
            desc,
            code,
            matcher: &self.matcher,
            lib_policies: &self.lib_policies,
            boilerplate: self.boilerplate.as_deref(),
        };
        report.absorb_findings(self.registry.run(&ctx, active));
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppchecker_apk::{Apk, ComponentKind, Dex, Manifest, Permission};

    fn weather_app(policy: &str) -> AppInput {
        let mut manifest = Manifest::new("com.example.weather");
        manifest.add_permission(Permission::AccessFineLocation);
        manifest.add_component(ComponentKind::Activity, "com.example.weather.Main", true);
        let dex = Dex::builder()
            .class("com.example.weather.Main", |c| {
                c.extends("android.app.Activity");
                c.method("onCreate", 1, |m| {
                    m.invoke_virtual(
                        "android.location.LocationManager",
                        "getLastKnownLocation",
                        &[0],
                        Some(1),
                    );
                });
            })
            .class("com.unity3d.ads.UnityAds", |c| {
                c.method("init", 1, |_| {});
            })
            .build();
        AppInput {
            package: "com.example.weather".to_string(),
            policy_html: format!("<html><body><p>{policy}</p></body></html>"),
            description: "Accurate weather forecast for your current location.".to_string(),
            apk: Apk::new(manifest, dex),
            labels: Vec::new(),
        }
    }

    #[test]
    fn clean_app_has_no_problems() {
        let app = weather_app(
            "We may collect your location to show the forecast. \
             We may also collect your device id.",
        );
        let report = PPChecker::new().check_app(&app).unwrap();
        assert!(!report.has_any_problem(), "unexpected: {report}");
    }

    #[test]
    fn incomplete_app_detected_through_both_channels() {
        let app = weather_app("We collect your email address.");
        let report = PPChecker::new().check_app(&app).unwrap();
        assert!(report.is_incomplete());
        assert!(report.missed_via_description().count() >= 1);
        assert!(report.missed_via_code().count() >= 1);
    }

    #[test]
    fn incorrect_app_detected() {
        let app = weather_app("We will not collect your location information.");
        let report = PPChecker::new().check_app(&app).unwrap();
        assert!(report.is_incorrect());
    }

    #[test]
    fn inconsistency_needs_registered_lib_policy() {
        let app = weather_app("We may collect your location. We do not collect your device id.");
        let mut checker = PPChecker::new();
        // Without the lib policy: no inconsistency possible.
        let r1 = checker.check_app(&app).unwrap();
        assert!(!r1.is_inconsistent());
        // With unity3d's policy declaring device-id collection: conflict.
        checker.register_lib_policy(
            "unityads",
            "<p>We may collect your device id and advertising identifier.</p>",
        );
        let r2 = checker.check_app(&app).unwrap();
        assert!(r2.is_inconsistent());
        assert_eq!(r2.inconsistencies[0].lib_id, "unityads");
    }

    #[test]
    fn report_lists_embedded_libs() {
        let app = weather_app("We may collect your location and your device id.");
        let report = PPChecker::new().check_app(&app).unwrap();
        assert!(report.libs.contains(&"unityads".to_string()));
    }

    #[test]
    fn checker_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PPChecker>();
        assert_send_sync::<AppInput>();
        assert_send_sync::<StageTimings>();
        assert_send_sync::<CheckOutcome>();
    }

    #[test]
    fn policy_provider_result_is_used_verbatim() {
        let app = weather_app("We collect your email address.");
        let checker = PPChecker::new();
        // Pre-analyzed elsewhere (as a batch cache would hold it).
        let cached = Arc::new(checker.analyzer().analyze_html(&app.policy_html));
        let mut called = false;
        let outcome = checker
            .check(
                CheckRequest::builder(&app)
                    .policy_provider(|_, _| {
                        called = true;
                        Arc::clone(&cached)
                    })
                    .build(),
            )
            .unwrap();
        assert!(called);
        assert!(outcome.is_incomplete());
    }

    #[test]
    fn config_fingerprint_tracks_every_knob() {
        let base = PPChecker::new().config_fingerprint();
        assert_eq!(base, PPChecker::new().config_fingerprint());
        assert_ne!(base, PPChecker::new().with_similarity_threshold(0.5).config_fingerprint());
        assert_ne!(
            base,
            PPChecker::new()
                .with_static_options(AnalysisOptions { reachability: false, uri_analysis: true })
                .config_fingerprint()
        );
        assert_ne!(
            base,
            PPChecker::new()
                .with_analyzer(PolicyAnalyzer::new().with_synonym_expansion())
                .config_fingerprint()
        );
        let mut with_lib = PPChecker::new();
        with_lib.register_lib_policy("unityads", "<p>We may collect your device id.</p>");
        assert_ne!(base, with_lib.config_fingerprint());
    }

    #[test]
    fn plain_request_captures_nothing() {
        let app = weather_app("We collect your email address.");
        let outcome = PPChecker::new().check_app(&app).unwrap();
        assert!(outcome.timings.is_none());
        assert!(outcome.trace.is_none());
        // Deref keeps the old read patterns working.
        assert!(outcome.is_incomplete());
        assert_eq!(format!("{outcome}"), format!("{}", outcome.report));
    }

    #[test]
    fn request_builder_captures_timings_and_trace() {
        let app = weather_app("We collect your email address.");
        let checker = PPChecker::new();
        let cached = Arc::new(checker.analyzer().analyze_html(&app.policy_html));
        let outcome = checker
            .check(
                CheckRequest::builder(&app)
                    .policy_provider(|_, _| Arc::clone(&cached))
                    .capture_timings()
                    .capture_trace()
                    .build(),
            )
            .unwrap();
        let timings = outcome.timings.expect("timings requested");
        let trace = outcome.trace.as_deref().expect("trace requested");
        assert_eq!(
            trace.iter().map(|s| s.name).collect::<Vec<_>>(),
            ["check.policy", "check.description", "check.static", "check.matching"],
        );
        assert_eq!(trace.iter().map(|s| s.duration).sum::<Duration>(), timings.total());
        assert!(outcome.is_incomplete());
    }

    #[test]
    fn builder_outcome_matches_plain_check() {
        let app = weather_app("We will not collect your location information.");
        let checker = PPChecker::new();
        let plain = checker.check_app(&app).unwrap();
        let built = checker.check(CheckRequest::builder(&app).capture_timings().build()).unwrap();
        assert_eq!(format!("{plain}"), format!("{built}"));
        assert_eq!(plain.report.incorrect.len(), built.report.incorrect.len());
    }

    #[test]
    fn data_safety_detector_cross_checks_labels() {
        use crate::detector::{DataSafetyKind, FindingPayload};
        let mut app = weather_app("We may collect your location to show the forecast.");
        // Declared: device id (which neither code nor policy backs).
        // Undeclared: location (which code collects, permission-gated).
        app.labels = vec![DataSafetyLabel::new(ppchecker_apk::PrivateInfo::DeviceId)];
        let checker = PPChecker::new().with_detectors(DetectorId::ALL);
        let report = checker.check_app(&app).unwrap();
        let kinds: Vec<_> = report
            .findings
            .iter()
            .filter_map(|f| match &f.payload {
                FindingPayload::DataSafety(d) => Some((d.info, d.kind)),
                _ => None,
            })
            .collect();
        assert!(kinds.contains(&(
            ppchecker_apk::PrivateInfo::Location,
            DataSafetyKind::LabelOmitsCollection
        )));
        assert!(kinds
            .contains(&(ppchecker_apk::PrivateInfo::DeviceId, DataSafetyKind::PolicyOmitsLabel)));
    }

    #[test]
    fn data_safety_detector_declines_label_free_apps() {
        let app = weather_app("We collect your email address.");
        let checker = PPChecker::new().with_detectors(DetectorId::ALL);
        let report = checker.check_app(&app).unwrap();
        assert_eq!(report.detector_findings(DetectorId::DataSafety), 0);
    }

    #[test]
    fn purpose_detector_flags_contradicted_exclusive_claim() {
        use crate::detector::{FindingPayload, PurposeKind};
        // weather_app embeds unityads (an ad lib); the exclusive
        // functionality claim is contradicted by it.
        let app = weather_app(
            "We may collect your location and your device id \
             only to provide app functionality.",
        );
        let checker = PPChecker::new().with_detectors(DetectorId::ALL);
        let report = checker.check_app(&app).unwrap();
        let purpose: Vec<_> = report
            .findings
            .iter()
            .filter_map(|f| match &f.payload {
                FindingPayload::Purpose(p) => Some(p),
                _ => None,
            })
            .collect();
        assert_eq!(purpose.len(), 1, "{report}");
        assert_eq!(purpose[0].kind, PurposeKind::Contradicted { lib_id: "unityads".into() });
    }

    #[test]
    fn boilerplate_detector_flags_second_member_of_a_family() {
        let index = Arc::new(BoilerplateIndex::new(0.8));
        let checker = PPChecker::new()
            .with_detectors(DetectorId::ALL)
            .with_boilerplate_index(Arc::clone(&index));
        let text = "We may collect your location to show the forecast. \
                    We may also collect your device id. \
                    We retain nothing longer than needed and never sell your data. \
                    We may share aggregate statistics with partners who help us run the service. \
                    You can request deletion of your account data at any time. \
                    Changes to this policy will be announced inside the application.";
        let a = weather_app(text);
        let mut b = weather_app(&format!("{text} This revision applies to channel three."));
        b.package = "com.example.weather2".into();
        assert_eq!(checker.check_app(&a).unwrap().detector_findings(DetectorId::Boilerplate), 0);
        let report = checker.check_app(&b).unwrap();
        assert_eq!(report.detector_findings(DetectorId::Boilerplate), 1, "{report}");
    }

    #[test]
    fn request_detector_selection_restricts_the_run() {
        let app = weather_app("We will not collect your location information.");
        let checker = PPChecker::new().with_detectors(DetectorId::ALL);
        let full = checker.check_app(&app).unwrap();
        assert!(full.is_incorrect());
        let only_incomplete = checker
            .check(CheckRequest::builder(&app).detectors(&[DetectorId::Incomplete]).build())
            .unwrap();
        assert!(!only_incomplete.is_incorrect());
        assert_eq!(only_incomplete.missed.len(), full.missed.len());
    }

    #[test]
    fn default_registry_ignores_labels_and_emits_no_extended_findings() {
        let mut app = weather_app("We collect your email address.");
        app.labels = vec![DataSafetyLabel::new(ppchecker_apk::PrivateInfo::DeviceId)];
        let report = PPChecker::new().check_app(&app).unwrap();
        assert!(report.findings.is_empty());
    }

    #[test]
    fn config_fingerprint_tracks_registry_and_boilerplate() {
        let base = PPChecker::new().config_fingerprint();
        assert_ne!(base, PPChecker::new().with_detectors(DetectorId::ALL).config_fingerprint());
        assert_ne!(
            base,
            PPChecker::new()
                .with_boilerplate_index(Arc::new(BoilerplateIndex::new(0.8)))
                .config_fingerprint()
        );
    }

    #[test]
    fn check_error_converts_into_unified_error() {
        let mut app = weather_app("We collect your email address.");
        app.apk = ppchecker_apk::Apk::from_packed_blob(
            app.apk.manifest.clone(),
            b"PKDX\x01not a payload".to_vec(),
        );
        let err = PPChecker::new().check_app(&app).unwrap_err();
        assert_eq!(err.stage(), crate::error::Stage::StaticAnalysis);
        assert!(err.to_string().contains("static analysis failed"), "{err}");
    }
}
