//! Wire codec for [`Report`]: the persistent form a per-app problem
//! report takes in the artifact store.
//!
//! A stored report is only replayed when the app's inputs *and* the
//! checker configuration are unchanged (see
//! [`PPChecker::config_fingerprint`]), so the encoding carries plain
//! values — info names, qualified permission names, category tags — and
//! decoding rebuilds an identical [`Report`].
//!
//! [`PPChecker::config_fingerprint`]: crate::PPChecker::config_fingerprint

use crate::detector::{
    BoilerplateFinding, DataSafetyFinding, DataSafetyKind, DetectorId, Finding, FindingPayload,
    PurposeFinding, PurposeKind,
};
use crate::problems::{Channel, Inconsistency, IncorrectFinding, MissedInfo, Report};
use ppchecker_apk::{Permission, PrivateInfo};
use ppchecker_policy::{Purpose, VerbCategory};
use ppchecker_store::{WireError, WireReader, WireWriter};

fn category_byte(c: VerbCategory) -> u8 {
    match c {
        VerbCategory::Collect => 0,
        VerbCategory::Use => 1,
        VerbCategory::Retain => 2,
        VerbCategory::Disclose => 3,
    }
}

fn category_from(b: u8) -> Result<VerbCategory, WireError> {
    match b {
        0 => Ok(VerbCategory::Collect),
        1 => Ok(VerbCategory::Use),
        2 => Ok(VerbCategory::Retain),
        3 => Ok(VerbCategory::Disclose),
        other => Err(WireError(format!("bad verb category {other}"))),
    }
}

fn channel_byte(c: Channel) -> u8 {
    match c {
        Channel::Description => 0,
        Channel::Code => 1,
    }
}

fn channel_from(b: u8) -> Result<Channel, WireError> {
    match b {
        0 => Ok(Channel::Description),
        1 => Ok(Channel::Code),
        other => Err(WireError(format!("bad channel {other}"))),
    }
}

fn info_from(name: &str) -> Result<PrivateInfo, WireError> {
    PrivateInfo::ALL
        .iter()
        .find(|i| i.canonical_phrase() == name)
        .copied()
        .ok_or_else(|| WireError(format!("unknown private info '{name}'")))
}

fn detector_from(name: &str) -> Result<DetectorId, WireError> {
    DetectorId::parse(name).ok_or_else(|| WireError(format!("unknown detector '{name}'")))
}

fn purpose_from(name: &str) -> Result<Purpose, WireError> {
    match name {
        "advertising" => Ok(Purpose::Advertising),
        "analytics" => Ok(Purpose::Analytics),
        "functionality" => Ok(Purpose::Functionality),
        other => Err(WireError(format!("unknown purpose '{other}'"))),
    }
}

fn encode_finding(w: &mut WireWriter, finding: &Finding) {
    w.str(finding.detector.as_str());
    match &finding.payload {
        FindingPayload::DataSafety(d) => {
            w.u8(0);
            w.str(d.info.canonical_phrase());
            w.bool(matches!(d.kind, DataSafetyKind::PolicyOmitsLabel));
        }
        FindingPayload::Purpose(p) => {
            w.u8(1);
            w.str(p.purpose.as_str());
            match &p.kind {
                PurposeKind::Contradicted { lib_id } => {
                    w.bool(true);
                    w.str(lib_id);
                }
                PurposeKind::Unsupported => w.bool(false),
            }
            w.str(&p.sentence);
        }
        FindingPayload::Boilerplate(b) => {
            w.u8(2);
            w.str(&b.family);
            w.u64(b.similarity.to_bits());
        }
        // Paper payloads never reach Report::findings (they fold into
        // the classic vectors encoded above); store them defensively as
        // an opaque tag so a custom registry cannot corrupt the stream.
        FindingPayload::Missed(_)
        | FindingPayload::Incorrect(_)
        | FindingPayload::Inconsistent(_) => w.u8(255),
    }
}

fn decode_finding(r: &mut WireReader<'_>) -> Result<Option<Finding>, WireError> {
    let detector = detector_from(r.str()?)?;
    let payload = match r.u8()? {
        0 => FindingPayload::DataSafety(DataSafetyFinding {
            info: info_from(r.str()?)?,
            kind: if r.bool()? {
                DataSafetyKind::PolicyOmitsLabel
            } else {
                DataSafetyKind::LabelOmitsCollection
            },
        }),
        1 => {
            let purpose = purpose_from(r.str()?)?;
            let kind = if r.bool()? {
                PurposeKind::Contradicted { lib_id: r.str()?.to_string() }
            } else {
                PurposeKind::Unsupported
            };
            FindingPayload::Purpose(PurposeFinding {
                purpose,
                kind,
                sentence: r.str()?.to_string(),
            })
        }
        2 => FindingPayload::Boilerplate(BoilerplateFinding {
            family: r.str()?.to_string(),
            similarity: f64::from_bits(r.u64()?),
        }),
        255 => return Ok(None),
        other => return Err(WireError(format!("bad finding payload tag {other}"))),
    };
    Ok(Some(Finding { detector, payload }))
}

/// Encodes a report for the artifact store.
pub fn encode_report(report: &Report) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.str(&report.package);
    w.bool(report.has_disclaimer);
    w.seq(report.libs.len());
    for lib in &report.libs {
        w.str(lib);
    }
    w.seq(report.missed.len());
    for m in &report.missed {
        w.str(m.info.canonical_phrase());
        w.u8(channel_byte(m.channel));
        w.opt_str(m.permission.as_ref().map(Permission::qualified_name).as_deref());
        w.bool(m.retained);
    }
    w.seq(report.incorrect.len());
    for i in &report.incorrect {
        w.str(i.info.canonical_phrase());
        w.u8(channel_byte(i.channel));
        w.str(&i.sentence);
        w.u8(category_byte(i.category));
    }
    w.seq(report.inconsistencies.len());
    for i in &report.inconsistencies {
        w.str(&i.lib_id);
        w.u8(category_byte(i.category));
        w.str(&i.app_sentence);
        w.str(&i.lib_sentence);
        w.str(&i.app_resource);
        w.str(&i.lib_resource);
    }
    w.seq(report.findings.len());
    for f in &report.findings {
        encode_finding(&mut w, f);
    }
    w.into_bytes()
}

/// Decodes a stored report.
///
/// # Errors
///
/// Returns [`WireError`] on any defect; the store layer treats that as a
/// miss and re-runs the full check.
pub fn decode_report(bytes: &[u8]) -> Result<Report, WireError> {
    let mut r = WireReader::new(bytes);
    let package = r.str()?.to_string();
    let has_disclaimer = r.bool()?;
    let n_libs = r.seq()?;
    let mut libs = Vec::with_capacity(n_libs);
    for _ in 0..n_libs {
        libs.push(r.str()?.to_string());
    }
    let n_missed = r.seq()?;
    let mut missed = Vec::with_capacity(n_missed);
    for _ in 0..n_missed {
        missed.push(MissedInfo {
            info: info_from(r.str()?)?,
            channel: channel_from(r.u8()?)?,
            permission: r.opt_str()?.map(Permission::from_name),
            retained: r.bool()?,
        });
    }
    let n_incorrect = r.seq()?;
    let mut incorrect = Vec::with_capacity(n_incorrect);
    for _ in 0..n_incorrect {
        incorrect.push(IncorrectFinding {
            info: info_from(r.str()?)?,
            channel: channel_from(r.u8()?)?,
            sentence: r.str()?.to_string(),
            category: category_from(r.u8()?)?,
        });
    }
    let n_incons = r.seq()?;
    let mut inconsistencies = Vec::with_capacity(n_incons);
    for _ in 0..n_incons {
        inconsistencies.push(Inconsistency {
            lib_id: r.str()?.to_string(),
            category: category_from(r.u8()?)?,
            app_sentence: r.str()?.to_string(),
            lib_sentence: r.str()?.to_string(),
            app_resource: r.str()?.to_string(),
            lib_resource: r.str()?.to_string(),
        });
    }
    let n_findings = r.seq()?;
    let mut findings = Vec::with_capacity(n_findings);
    for _ in 0..n_findings {
        if let Some(f) = decode_finding(&mut r)? {
            findings.push(f);
        }
    }
    if !r.is_exhausted() {
        return Err(WireError("trailing bytes after report".into()));
    }
    Ok(Report { package, missed, incorrect, inconsistencies, libs, has_disclaimer, findings })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            package: "com.example.weather".into(),
            missed: vec![
                MissedInfo {
                    info: PrivateInfo::Location,
                    channel: Channel::Code,
                    permission: Some(Permission::AccessFineLocation),
                    retained: true,
                },
                MissedInfo {
                    info: PrivateInfo::Contact,
                    channel: Channel::Description,
                    permission: None,
                    retained: false,
                },
            ],
            incorrect: vec![IncorrectFinding {
                info: PrivateInfo::DeviceId,
                channel: Channel::Code,
                sentence: "we will not collect your device id".into(),
                category: VerbCategory::Collect,
            }],
            inconsistencies: vec![Inconsistency {
                lib_id: "unityads".into(),
                category: VerbCategory::Disclose,
                app_sentence: "we do not share your data".into(),
                lib_sentence: "we may share your data".into(),
                app_resource: "data".into(),
                lib_resource: "data".into(),
            }],
            libs: vec!["unityads".into(), "flurry".into()],
            has_disclaimer: true,
            findings: vec![
                Finding {
                    detector: DetectorId::DataSafety,
                    payload: FindingPayload::DataSafety(DataSafetyFinding {
                        info: PrivateInfo::Location,
                        kind: DataSafetyKind::LabelOmitsCollection,
                    }),
                },
                Finding {
                    detector: DetectorId::Purpose,
                    payload: FindingPayload::Purpose(PurposeFinding {
                        purpose: Purpose::Functionality,
                        kind: PurposeKind::Contradicted { lib_id: "admob".into() },
                        sentence: "we use your data only for app functionality".into(),
                    }),
                },
                Finding {
                    detector: DetectorId::Boilerplate,
                    payload: FindingPayload::Boilerplate(BoilerplateFinding {
                        family: "com.family.root".into(),
                        similarity: 0.921875,
                    }),
                },
            ],
        }
    }

    #[test]
    fn report_round_trips_exactly() {
        let original = sample();
        let decoded = decode_report(&encode_report(&original)).unwrap();
        assert_eq!(decoded.package, original.package);
        assert_eq!(decoded.missed, original.missed);
        assert_eq!(decoded.incorrect, original.incorrect);
        assert_eq!(decoded.inconsistencies, original.inconsistencies);
        assert_eq!(decoded.libs, original.libs);
        assert_eq!(decoded.has_disclaimer, original.has_disclaimer);
        assert_eq!(decoded.findings, original.findings);
        // The rendered form — what batch output serializes — matches too.
        assert_eq!(format!("{decoded}"), format!("{original}"));
    }

    #[test]
    fn custom_permission_survives() {
        let mut report = sample();
        report.missed[0].permission = Some(Permission::Custom("com.vendor.SPECIAL".into()));
        let decoded = decode_report(&encode_report(&report)).unwrap();
        assert_eq!(decoded.missed[0].permission, report.missed[0].permission);
    }

    #[test]
    fn empty_report_round_trips() {
        let decoded = decode_report(&encode_report(&Report::default())).unwrap();
        assert!(!decoded.has_any_problem());
    }

    #[test]
    fn corrupt_bytes_fail_decode() {
        let bytes = encode_report(&sample());
        for cut in [0, 3, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_report(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut trailing = bytes.clone();
        trailing.push(7);
        assert!(decode_report(&trailing).is_err());
    }
}
