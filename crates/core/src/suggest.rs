//! Privacy-policy repair suggestions (an AutoPPG-style extension).
//!
//! The paper's related work (§VII) notes the authors' companion system
//! AutoPPG, which *generates* privacy-policy text from an app's behaviour.
//! This module closes the loop for PPChecker's output: given the detected
//! problems, it drafts the sentences a developer should add (for missed
//! information) or remove/reword (for contradicted denials), turning a
//! report into an actionable fix list.

use crate::problems::{Channel, Report};
use ppchecker_static::SinkKind;
use std::fmt;

/// What kind of edit a suggestion proposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditKind {
    /// Add a new disclosure sentence.
    Add,
    /// Remove or reword a contradicted denial.
    Reword,
    /// Add a pointer to third-party lib policies.
    AddThirdPartyNotice,
}

/// One suggested policy edit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suggestion {
    /// Edit kind.
    pub kind: EditKind,
    /// The proposed sentence (for adds) or the offending sentence (for
    /// rewording).
    pub text: String,
    /// Why the edit is needed.
    pub reason: String,
}

impl fmt::Display for Suggestion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let verb = match self.kind {
            EditKind::Add => "ADD",
            EditKind::Reword => "REWORD",
            EditKind::AddThirdPartyNotice => "ADD NOTICE",
        };
        write!(f, "[{verb}] {} — {}", self.text, self.reason)
    }
}

/// Drafts policy edits that would resolve every finding in `report`.
///
/// # Examples
///
/// ```
/// use ppchecker_core::{problems::{Channel, MissedInfo, Report}, suggest::suggest_fixes};
/// use ppchecker_apk::PrivateInfo;
///
/// let report = Report {
///     missed: vec![MissedInfo {
///         info: PrivateInfo::Location,
///         channel: Channel::Code,
///         permission: None,
///         retained: true,
///     }],
///     ..Report::default()
/// };
/// let fixes = suggest_fixes(&report);
/// assert!(fixes[0].text.contains("location"));
/// ```
pub fn suggest_fixes(report: &Report) -> Vec<Suggestion> {
    let mut out = Vec::new();

    // Incomplete: draft a disclosure per missed info. Retained info needs
    // the stronger "collect and store" phrasing.
    let mut seen = Vec::new();
    for m in &report.missed {
        if seen.contains(&m.info) {
            continue;
        }
        seen.push(m.info);
        let phrase = natural_phrase(m.info);
        let (text, why) = if m.retained {
            (
                format!("We may collect and store your {phrase}."),
                format!(
                    "the app retains {phrase} (a source-to-sink flow exists) but the policy \
                     never mentions it"
                ),
            )
        } else {
            (
                format!("We may collect your {phrase}."),
                match m.channel {
                    Channel::Code => {
                        format!("the app's code collects {phrase} but the policy never mentions it")
                    }
                    Channel::Description => format!(
                        "the description implies {phrase} use but the policy never mentions it"
                    ),
                },
            )
        };
        out.push(Suggestion { kind: EditKind::Add, text, reason: why });
    }

    // Incorrect: the denial must go (one suggestion per offending
    // sentence, however many channels flagged it).
    let mut reworded: Vec<&str> = Vec::new();
    for f in &report.incorrect {
        if reworded.contains(&f.sentence.as_str()) {
            continue;
        }
        reworded.push(&f.sentence);
        out.push(Suggestion {
            kind: EditKind::Reword,
            text: f.sentence.clone(),
            reason: format!(
                "this sentence denies {} of {}, but the app performs that behaviour",
                f.category,
                f.info.canonical_phrase()
            ),
        });
    }

    // Inconsistent: either drop the denial or add a third-party notice.
    for inc in &report.inconsistencies {
        out.push(Suggestion {
            kind: EditKind::Reword,
            text: inc.app_sentence.clone(),
            reason: format!(
                "the embedded library '{}' declares it will {} {} — narrow this denial to \
                 first-party behaviour or remove it",
                inc.lib_id, inc.category, inc.lib_resource
            ),
        });
    }
    if !report.inconsistencies.is_empty() && !report.has_disclaimer {
        out.push(Suggestion {
            kind: EditKind::AddThirdPartyNotice,
            text: format!(
                "Our app embeds third-party components ({}); their data practices are \
                 governed by their own privacy policies.",
                report.libs.join(", ")
            ),
            reason: "the policy makes claims its embedded libraries contradict and carries \
                     no third-party notice"
                .to_string(),
        });
    }
    out
}

/// A phrasing of the category suited to generated sentences ("your
/// contacts" reads better than "your contact").
fn natural_phrase(info: ppchecker_apk::PrivateInfo) -> &'static str {
    use ppchecker_apk::PrivateInfo;
    match info {
        PrivateInfo::Contact => "contacts",
        PrivateInfo::Cookie => "cookies",
        PrivateInfo::Sms => "sms messages",
        PrivateInfo::Camera => "camera pictures",
        other => other.canonical_phrase(),
    }
}

/// Describes a retained-information flow as the paper prints findings
/// ("a path between getLatitude() and Log.i()").
pub fn describe_leak(leak: &ppchecker_static::Leak) -> String {
    let destination = match leak.sink {
        SinkKind::Log => "the log",
        SinkKind::File => "a file",
        SinkKind::Network => "the network",
        SinkKind::Sms => "an SMS",
        SinkKind::Bluetooth => "a Bluetooth channel",
    };
    format!(
        "a path between {} and {} (in {}) writes {} to {destination}",
        leak.source_api,
        leak.sink_api,
        leak.at_method,
        leak.info.canonical_phrase(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::{Inconsistency, IncorrectFinding, MissedInfo};
    use ppchecker_apk::PrivateInfo;
    use ppchecker_policy::VerbCategory;

    #[test]
    fn missed_info_yields_add_suggestions() {
        let report = Report {
            missed: vec![
                MissedInfo {
                    info: PrivateInfo::Location,
                    channel: Channel::Code,
                    permission: None,
                    retained: false,
                },
                MissedInfo {
                    info: PrivateInfo::Contact,
                    channel: Channel::Code,
                    permission: None,
                    retained: true,
                },
            ],
            ..Report::default()
        };
        let fixes = suggest_fixes(&report);
        assert_eq!(fixes.len(), 2);
        assert!(fixes.iter().all(|f| f.kind == EditKind::Add));
        assert!(fixes[1].text.contains("collect and store"));
    }

    #[test]
    fn duplicate_channels_suggest_once() {
        let mi = |channel| MissedInfo {
            info: PrivateInfo::Location,
            channel,
            permission: None,
            retained: false,
        };
        let report = Report {
            missed: vec![mi(Channel::Description), mi(Channel::Code)],
            ..Report::default()
        };
        assert_eq!(suggest_fixes(&report).len(), 1);
    }

    #[test]
    fn incorrect_yields_reword() {
        let report = Report {
            incorrect: vec![IncorrectFinding {
                info: PrivateInfo::Contact,
                channel: Channel::Code,
                sentence: "we will not store your contacts.".to_string(),
                category: VerbCategory::Retain,
            }],
            ..Report::default()
        };
        let fixes = suggest_fixes(&report);
        assert_eq!(fixes[0].kind, EditKind::Reword);
        assert!(fixes[0].reason.contains("retain"));
    }

    #[test]
    fn inconsistency_without_disclaimer_adds_notice() {
        let report = Report {
            libs: vec!["admob".to_string()],
            inconsistencies: vec![Inconsistency {
                lib_id: "admob".to_string(),
                category: VerbCategory::Disclose,
                app_sentence: "we will never share your device id.".to_string(),
                lib_sentence: "we may share your device id.".to_string(),
                app_resource: "device id".to_string(),
                lib_resource: "device id".to_string(),
            }],
            ..Report::default()
        };
        let fixes = suggest_fixes(&report);
        assert!(fixes.iter().any(|f| f.kind == EditKind::AddThirdPartyNotice));
        // With a disclaimer already present, no notice is suggested.
        let with_disclaimer = Report { has_disclaimer: true, ..report };
        assert!(suggest_fixes(&with_disclaimer)
            .iter()
            .all(|f| f.kind != EditKind::AddThirdPartyNotice));
    }

    #[test]
    fn leak_description_reads_like_the_paper() {
        let leak = ppchecker_static::Leak {
            info: PrivateInfo::Location,
            sink: SinkKind::Log,
            source_api: "android.location.Location.getLatitude".to_string(),
            sink_api: "android.util.Log.i".to_string(),
            at_method: "com.x.Main.onCreate".to_string(),
        };
        let s = describe_leak(&leak);
        assert!(s.contains("getLatitude"));
        assert!(s.contains("Log.i"));
        assert!(s.contains("the log"));
    }

    #[test]
    fn clean_report_needs_no_fixes() {
        assert!(suggest_fixes(&Report::default()).is_empty());
    }
}
