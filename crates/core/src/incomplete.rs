//! Detecting incomplete privacy policies (Algorithms 1 and 2).

use crate::matcher::Matcher;
use crate::problems::{Channel, MissedInfo};
use ppchecker_apk::{Manifest, PrivateInfo};
use ppchecker_desc::DescriptionAnalysis;
use ppchecker_nlp::{intern, Symbol};
use ppchecker_policy::PolicyAnalysis;
use ppchecker_static::StaticReport;

/// Algorithm 1: detect incompleteness by contrasting `Info_desc` with the
/// information the policy mentions.
///
/// For each piece of information inferred from the description, look for a
/// semantically similar resource among the policy's positive
/// collect/use/retain/disclose sentences; report it missed if none reaches
/// the ESA threshold.
pub fn via_description(
    policy: &PolicyAnalysis,
    desc: &DescriptionAnalysis,
    esa: &Matcher,
) -> Vec<MissedInfo> {
    let pp_infos: Vec<Symbol> = policy.mentioned_resource_symbols().into_iter().collect();
    let mut out = Vec::new();
    for &info in &desc.info {
        if covered(info, &pp_infos, esa) {
            continue;
        }
        // Attach the permission whose evidence inferred this info
        // (Table III keys its rows on the permission); with several
        // candidate permissions, the strongest evidence wins.
        let permission = desc
            .evidence
            .iter()
            .filter(|e| PrivateInfo::from_permission(&e.permission).contains(&info))
            .max_by(|a, b| a.similarity.total_cmp(&b.similarity))
            .map(|e| e.permission.clone());
        out.push(MissedInfo { info, channel: Channel::Description, permission, retained: false });
    }
    out
}

/// Algorithm 2: detect incompleteness by contrasting `Collect_code` ∪
/// `Retain_code` with the policy.
///
/// Information guarded by a permission is only considered when the app
/// actually requests that permission.
pub fn via_code(
    policy: &PolicyAnalysis,
    code: &StaticReport,
    manifest: &Manifest,
    esa: &Matcher,
) -> Vec<MissedInfo> {
    let pp_infos: Vec<Symbol> = policy.mentioned_resource_symbols().into_iter().collect();
    let retained = code.retain_code();
    let mut out = Vec::new();
    let mut all: Vec<PrivateInfo> = code.collect_code().into_iter().collect();
    for r in &retained {
        if !all.contains(r) {
            all.push(*r);
        }
    }
    for info in all {
        if let Some(p) = info.required_permission() {
            if !manifest.has_permission(&p) {
                continue;
            }
        }
        if covered(info, &pp_infos, esa) {
            continue;
        }
        out.push(MissedInfo {
            info,
            channel: Channel::Code,
            permission: info.required_permission(),
            retained: retained.contains(&info),
        });
    }
    out
}

/// The `Similarity(Info, PPInfo) > threshold` test of the algorithms.
///
/// Canonical phrases are part of the interner's static pre-seed, so the
/// `intern` here is a read-side probe, not an allocation.
fn covered(info: PrivateInfo, pp_infos: &[Symbol], esa: &Matcher) -> bool {
    let info_sym = intern(info.canonical_phrase());
    pp_infos.iter().any(|&pp| esa.same_thing_sym(info_sym, pp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppchecker_apk::{Apk, ComponentKind, Dex, Permission};
    use ppchecker_desc::analyze_description;
    use ppchecker_policy::PolicyAnalyzer;

    fn esa() -> Matcher {
        Matcher::new()
    }

    #[test]
    fn description_detects_missing_location() {
        // Fig. 2: description implies location, policy only covers email.
        let policy = PolicyAnalyzer::new()
            .analyze_text("We will collect your email address. We store your account name.");
        let desc = analyze_description(
            "Location aware tasks will help you to utilize your field force in optimum way.",
        );
        let missed = via_description(&policy, &desc, &esa());
        assert!(missed.iter().any(|m| m.info == PrivateInfo::Location));
        assert!(missed.iter().all(|m| m.channel == Channel::Description));
    }

    #[test]
    fn complete_policy_yields_nothing_via_description() {
        let policy = PolicyAnalyzer::new()
            .analyze_text("We may collect your location to show nearby results.");
        let desc = analyze_description("Find the weather at your location.");
        assert!(via_description(&policy, &desc, &esa()).is_empty());
    }

    fn location_app() -> (Apk, StaticReport) {
        let mut manifest = ppchecker_apk::Manifest::new("com.x");
        manifest.add_permission(Permission::AccessFineLocation);
        manifest.add_component(ComponentKind::Activity, "com.x.Main", true);
        let dex = Dex::builder()
            .class("com.x.Main", |c| {
                c.method("onCreate", 1, |m| {
                    m.invoke_virtual("android.location.Location", "getLatitude", &[0], Some(1));
                });
            })
            .build();
        let apk = Apk::new(manifest, dex);
        let report = ppchecker_static::analyze(&apk).unwrap();
        (apk, report)
    }

    #[test]
    fn code_detects_missing_location() {
        let (apk, report) = location_app();
        let policy = PolicyAnalyzer::new().analyze_text("We collect your email address.");
        let missed = via_code(&policy, &report, &apk.manifest, &esa());
        assert_eq!(missed.len(), 1);
        assert_eq!(missed[0].info, PrivateInfo::Location);
        assert!(!missed[0].retained);
    }

    #[test]
    fn code_detection_requires_permission() {
        let (apk, report) = location_app();
        // Same code, but the manifest lacks the location permission: the
        // algorithm only considers apps that request the permission.
        let mut manifest = apk.manifest.clone();
        manifest.permissions.clear();
        let policy = PolicyAnalyzer::new().analyze_text("We collect your email address.");
        assert!(via_code(&policy, &report, &manifest, &esa()).is_empty());
    }

    #[test]
    fn covered_info_not_reported() {
        let (apk, report) = location_app();
        let policy = PolicyAnalyzer::new()
            .analyze_text("We may collect your location when you use the app.");
        assert!(via_code(&policy, &report, &apk.manifest, &esa()).is_empty());
    }

    #[test]
    fn retained_flag_set_for_leaks() {
        let mut manifest = ppchecker_apk::Manifest::new("com.x");
        manifest.add_permission(Permission::GetTasks);
        manifest.add_component(ComponentKind::Activity, "com.x.Main", true);
        let dex = Dex::builder()
            .class("com.x.Main", |c| {
                c.method("onCreate", 1, |m| {
                    m.invoke_virtual(
                        "android.content.pm.PackageManager",
                        "getInstalledPackages",
                        &[0],
                        Some(1),
                    );
                    m.invoke_static("android.util.Log", "e", &[1], None);
                });
            })
            .build();
        let apk = Apk::new(manifest, dex);
        let report = ppchecker_static::analyze(&apk).unwrap();
        let policy = PolicyAnalyzer::new().analyze_text("We collect your email address.");
        let missed = via_code(&policy, &report, &apk.manifest, &esa());
        assert!(missed.iter().any(|m| m.info == PrivateInfo::AppList && m.retained));
    }
}
