//! The pluggable detector API: every problem PPChecker reports is
//! produced by a [`Detector`] registered in a [`DetectorRegistry`].
//!
//! The three paper detectors ([`DetectorId::Incomplete`],
//! [`DetectorId::Incorrect`], [`DetectorId::Inconsistent`] — Algorithms
//! 1–5) ship on the default registry and fold their findings into the
//! classic [`Report`](crate::Report) vectors, so their output is
//! byte-identical to the
//! pre-registry pipeline. Three successor-literature detectors ride the
//! same trait:
//!
//! - [`DetectorId::DataSafety`]: cross-checks the app's structured
//!   Data-Safety label declarations against the policy's information
//!   elements and the taint-observed flows.
//! - [`DetectorId::Purpose`]: flags stated collection *purposes*
//!   (advertising / analytics / functionality) contradicted or
//!   unsupported by the embedded-library evidence.
//! - [`DetectorId::Boilerplate`]: flags policies that are near
//!   duplicates of an earlier policy in the corpus (shingled MinHash
//!   over interned token streams, see [`crate::minhash`]).
//!
//! Detectors run in canonical rank order regardless of registration
//! order, so a registry's output never depends on how it was assembled.

use crate::checker::{AppInput, CheckRequest};
use crate::incomplete;
use crate::inconsistent;
use crate::incorrect;
use crate::matcher::Matcher;
use crate::minhash::{self, BoilerplateIndex};
use crate::problems::{Inconsistency, IncorrectFinding, MissedInfo};
use ppchecker_apk::PrivateInfo;
use ppchecker_desc::DescriptionAnalysis;
use ppchecker_nlp::intern::intern;
use ppchecker_policy::{PolicyAnalysis, Purpose};
use ppchecker_static::{LibKind, StaticReport};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Identity of a registered detector.
///
/// `#[non_exhaustive]`: later revisions add detectors without a
/// breaking change, so downstream matches need a wildcard arm.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DetectorId {
    /// Incomplete policies (paper Algorithms 1–2).
    Incomplete,
    /// Incorrect policies (paper Algorithms 3–4).
    Incorrect,
    /// App/lib policy inconsistencies (paper Algorithm 5).
    Inconsistent,
    /// Data-Safety label cross-check.
    DataSafety,
    /// Stated-purpose compliance.
    Purpose,
    /// Corpus-wide near-duplicate (boilerplate) policies.
    Boilerplate,
}

impl DetectorId {
    /// Every built-in detector, in canonical run order.
    pub const ALL: &'static [DetectorId] = &[
        DetectorId::Incomplete,
        DetectorId::Incorrect,
        DetectorId::Inconsistent,
        DetectorId::DataSafety,
        DetectorId::Purpose,
        DetectorId::Boilerplate,
    ];

    /// Number of built-in detectors (sizes fixed counter arrays).
    pub const COUNT: usize = DetectorId::ALL.len();

    /// The paper's three detectors — the default registry.
    pub const PAPER: &'static [DetectorId] =
        &[DetectorId::Incomplete, DetectorId::Incorrect, DetectorId::Inconsistent];

    /// Stable lowercase identifier (CLI, wire, and JSON form).
    pub fn as_str(self) -> &'static str {
        match self {
            DetectorId::Incomplete => "incomplete",
            DetectorId::Incorrect => "incorrect",
            DetectorId::Inconsistent => "inconsistent",
            DetectorId::DataSafety => "data-safety",
            DetectorId::Purpose => "purpose",
            DetectorId::Boilerplate => "boilerplate",
        }
    }

    /// Parses the [`as_str`](DetectorId::as_str) form.
    pub fn parse(s: &str) -> Option<DetectorId> {
        DetectorId::ALL.iter().copied().find(|id| id.as_str() == s)
    }

    /// Canonical run order: detectors execute sorted by rank no matter
    /// the registration order.
    pub fn rank(self) -> usize {
        DetectorId::ALL.iter().position(|&id| id == self).unwrap_or(DetectorId::COUNT)
    }
}

impl fmt::Display for DetectorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured Data-Safety label declaration: the developer states
/// that the app collects this kind of information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DataSafetyLabel {
    /// The declared information kind.
    pub info: PrivateInfo,
}

impl DataSafetyLabel {
    /// A label declaring collection of `info`.
    pub fn new(info: PrivateInfo) -> Self {
        DataSafetyLabel { info }
    }

    /// Parses the canonical-phrase form (`"location"`, `"device id"`, …).
    pub fn parse(name: &str) -> Option<DataSafetyLabel> {
        PrivateInfo::ALL
            .iter()
            .copied()
            .find(|i| i.canonical_phrase() == name)
            .map(DataSafetyLabel::new)
    }
}

/// How a Data-Safety label disagrees with the other evidence channels.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataSafetyKind {
    /// Code collects (or retains) the information, gated by a granted
    /// permission, but the labels omit it.
    LabelOmitsCollection,
    /// A label declares the information but the policy never mentions
    /// it (by the paper's ESA coverage test).
    PolicyOmitsLabel,
}

impl DataSafetyKind {
    /// Stable lowercase identifier.
    pub fn as_str(self) -> &'static str {
        match self {
            DataSafetyKind::LabelOmitsCollection => "label-omits-collection",
            DataSafetyKind::PolicyOmitsLabel => "policy-omits-label",
        }
    }
}

/// One Data-Safety label mismatch.
#[derive(Debug, Clone, PartialEq)]
pub struct DataSafetyFinding {
    /// The information in disagreement.
    pub info: PrivateInfo,
    /// The direction of the disagreement.
    pub kind: DataSafetyKind,
}

/// How a stated purpose disagrees with the embedded-library evidence.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum PurposeKind {
    /// An exclusive claim ("only for app functionality") contradicted
    /// by an embedded library of a different purpose.
    Contradicted {
        /// The library whose presence contradicts the claim.
        lib_id: String,
    },
    /// A stated purpose with no embedded library serving it.
    Unsupported,
}

impl PurposeKind {
    /// Stable lowercase identifier.
    pub fn as_str(&self) -> &'static str {
        match self {
            PurposeKind::Contradicted { .. } => "contradicted",
            PurposeKind::Unsupported => "unsupported",
        }
    }
}

/// One purpose-compliance finding.
#[derive(Debug, Clone, PartialEq)]
pub struct PurposeFinding {
    /// The purpose the sentence states.
    pub purpose: Purpose,
    /// How the evidence disagrees.
    pub kind: PurposeKind,
    /// The offending sentence.
    pub sentence: String,
}

/// One near-duplicate (boilerplate) policy finding.
#[derive(Debug, Clone, PartialEq)]
pub struct BoilerplateFinding {
    /// Package of the policy family's representative (the first member
    /// of the family the index saw).
    pub family: String,
    /// Estimated Jaccard similarity to the representative, in [0, 1].
    pub similarity: f64,
}

/// A detector's payload.
///
/// `#[non_exhaustive]`: revisions add payload kinds without a breaking
/// change; wire and JSON encodings carry a schema tag for the same
/// reason.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum FindingPayload {
    /// Incomplete-policy record (folds into [`Report::missed`](crate::problems::Report::missed)).
    Missed(MissedInfo),
    /// Incorrect-policy record (folds into [`Report::incorrect`](crate::problems::Report::incorrect)).
    Incorrect(IncorrectFinding),
    /// Inconsistency record (folds into [`Report::inconsistencies`](crate::problems::Report::inconsistencies)).
    Inconsistent(Inconsistency),
    /// Data-Safety label mismatch.
    DataSafety(DataSafetyFinding),
    /// Purpose-compliance violation.
    Purpose(PurposeFinding),
    /// Near-duplicate policy.
    Boilerplate(BoilerplateFinding),
}

/// One finding: which detector produced it, and what it says.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// The producing detector.
    pub detector: DetectorId,
    /// The finding proper.
    pub payload: FindingPayload,
}

/// Everything a [`Detector`] may look at: the app's inputs plus every
/// per-app analysis the pipeline already computed, shared read-only.
pub struct DetectorCtx<'a> {
    /// The app under check.
    pub app: &'a AppInput,
    /// The analyzed privacy policy.
    pub policy: &'a PolicyAnalysis,
    /// The analyzed Play description.
    pub desc: &'a DescriptionAnalysis,
    /// The static-analysis report.
    pub code: &'a StaticReport,
    /// The ESA matcher.
    pub matcher: &'a Matcher,
    /// Registered third-party lib policies, by lib id.
    pub lib_policies: &'a HashMap<String, PolicyAnalysis>,
    /// The corpus-wide near-duplicate index, when one is attached.
    pub boilerplate: Option<&'a BoilerplateIndex>,
}

/// A pluggable problem detector.
///
/// Implementations must be pure over the [`DetectorCtx`] (the
/// boilerplate index is the one sanctioned piece of cross-app state)
/// and deterministic, so batch runs stay replayable.
pub trait Detector: Send + Sync {
    /// This detector's identity.
    fn id(&self) -> DetectorId;

    /// Whether the detector has anything to say about this request
    /// (e.g. the Data-Safety detector declines apps that declare no
    /// labels). Skipped detectors cost nothing.
    fn applies(&self, _request: &CheckRequest<'_>) -> bool {
        true
    }

    /// Produces this detector's findings.
    fn run(&self, ctx: &DetectorCtx<'_>) -> Vec<Finding>;
}

/// Incomplete policies — paper Algorithms 1–2, both channels,
/// description first (the paper counts them separately).
struct IncompleteDetector;

impl Detector for IncompleteDetector {
    fn id(&self) -> DetectorId {
        DetectorId::Incomplete
    }

    fn run(&self, ctx: &DetectorCtx<'_>) -> Vec<Finding> {
        let mut missed = incomplete::via_description(ctx.policy, ctx.desc, ctx.matcher);
        missed.extend(incomplete::via_code(
            ctx.policy,
            ctx.code,
            &ctx.app.apk.manifest,
            ctx.matcher,
        ));
        missed
            .into_iter()
            .map(|m| Finding {
                detector: DetectorId::Incomplete,
                payload: FindingPayload::Missed(m),
            })
            .collect()
    }
}

/// Incorrect policies — paper Algorithms 3–4.
struct IncorrectDetector;

impl Detector for IncorrectDetector {
    fn id(&self) -> DetectorId {
        DetectorId::Incorrect
    }

    fn run(&self, ctx: &DetectorCtx<'_>) -> Vec<Finding> {
        let mut findings = incorrect::via_description(ctx.policy, ctx.desc, ctx.matcher);
        findings.extend(incorrect::via_code(ctx.policy, ctx.code, ctx.matcher));
        findings
            .into_iter()
            .map(|i| Finding {
                detector: DetectorId::Incorrect,
                payload: FindingPayload::Incorrect(i),
            })
            .collect()
    }
}

/// App/lib inconsistencies — paper Algorithm 5, against the registered
/// policies of the libs actually embedded in this app.
struct InconsistentDetector;

impl Detector for InconsistentDetector {
    fn id(&self) -> DetectorId {
        DetectorId::Inconsistent
    }

    fn run(&self, ctx: &DetectorCtx<'_>) -> Vec<Finding> {
        let libs: Vec<(&str, &PolicyAnalysis)> = ctx
            .code
            .libs
            .iter()
            .filter_map(|l| ctx.lib_policies.get(l.id).map(|p| (l.id, p)))
            .collect();
        inconsistent::check_all(ctx.policy, libs, ctx.matcher)
            .into_iter()
            .map(|i| Finding {
                detector: DetectorId::Inconsistent,
                payload: FindingPayload::Inconsistent(i),
            })
            .collect()
    }
}

/// Data-Safety label cross-check: labels vs. policy elements vs.
/// taint-observed flows.
struct DataSafetyDetector;

impl Detector for DataSafetyDetector {
    fn id(&self) -> DetectorId {
        DetectorId::DataSafety
    }

    fn applies(&self, request: &CheckRequest<'_>) -> bool {
        !request.app().labels.is_empty()
    }

    fn run(&self, ctx: &DetectorCtx<'_>) -> Vec<Finding> {
        let labels: BTreeSet<PrivateInfo> = ctx.app.labels.iter().map(|l| l.info).collect();
        let mut findings = Vec::new();

        // Labels vs. code: everything the bytecode observably collects or
        // retains must be declared. Mirrors Algorithm 2's permission
        // gate — information whose guarding permission the app does not
        // even request is not chargeable to the labels.
        let mut observed: BTreeSet<PrivateInfo> = ctx.code.collect_code();
        observed.extend(ctx.code.retain_code());
        for info in observed {
            if let Some(perm) = info.required_permission() {
                if !ctx.app.apk.manifest.has_permission(&perm) {
                    continue;
                }
            }
            if !labels.contains(&info) {
                findings.push(Finding {
                    detector: DetectorId::DataSafety,
                    payload: FindingPayload::DataSafety(DataSafetyFinding {
                        info,
                        kind: DataSafetyKind::LabelOmitsCollection,
                    }),
                });
            }
        }

        // Labels vs. policy: a declared label the policy text never
        // covers (same ESA test as Algorithm 1's coverage predicate).
        let pp_infos: Vec<_> = ctx.policy.mentioned_resource_symbols().into_iter().collect();
        for info in labels {
            let sym = intern(info.canonical_phrase());
            if !pp_infos.iter().any(|&pp| ctx.matcher.same_thing_sym(sym, pp)) {
                findings.push(Finding {
                    detector: DetectorId::DataSafety,
                    payload: FindingPayload::DataSafety(DataSafetyFinding {
                        info,
                        kind: DataSafetyKind::PolicyOmitsLabel,
                    }),
                });
            }
        }
        findings
    }
}

/// Purpose compliance: stated purposes vs. embedded-library evidence.
struct PurposeDetector;

impl Detector for PurposeDetector {
    fn id(&self) -> DetectorId {
        DetectorId::Purpose
    }

    fn run(&self, ctx: &DetectorCtx<'_>) -> Vec<Finding> {
        let has_kind = |kind: LibKind| ctx.code.libs.iter().any(|l| l.kind == kind);
        let first_of = |kind: LibKind| ctx.code.libs.iter().find(|l| l.kind == kind);
        let mut findings = Vec::new();
        for sentence in ctx.policy.positive_sentences() {
            let Some(claim) = sentence.purpose else { continue };
            let kind = match claim.purpose {
                // "only to provide app functionality" is contradicted by
                // any embedded ad library — ads are not app features.
                Purpose::Functionality if claim.exclusive => first_of(LibKind::Ad)
                    .map(|l| PurposeKind::Contradicted { lib_id: l.id.to_string() }),
                // A stated advertising purpose with no ad library (and
                // an analytics purpose with neither a dev-tool nor an ad
                // library) has no evidence serving it.
                Purpose::Advertising if !has_kind(LibKind::Ad) => Some(PurposeKind::Unsupported),
                Purpose::Analytics if !has_kind(LibKind::DevTool) && !has_kind(LibKind::Ad) => {
                    Some(PurposeKind::Unsupported)
                }
                _ => None,
            };
            if let Some(kind) = kind {
                findings.push(Finding {
                    detector: DetectorId::Purpose,
                    payload: FindingPayload::Purpose(PurposeFinding {
                        purpose: claim.purpose,
                        kind,
                        sentence: sentence.text.clone(),
                    }),
                });
            }
        }
        findings
    }
}

/// Corpus-wide near-duplicate policies. Inert without an attached
/// [`BoilerplateIndex`] (see
/// [`PPChecker::with_boilerplate_index`](crate::PPChecker::with_boilerplate_index));
/// family assignment depends on probe order, so stream the corpus
/// through sequentially.
struct BoilerplateDetector;

impl Detector for BoilerplateDetector {
    fn id(&self) -> DetectorId {
        DetectorId::Boilerplate
    }

    fn run(&self, ctx: &DetectorCtx<'_>) -> Vec<Finding> {
        let Some(index) = ctx.boilerplate else { return Vec::new() };
        let tokens = minhash::policy_tokens(&ctx.app.policy_html);
        let sig = minhash::signature(&tokens);
        match index.probe_insert(&ctx.app.package, &sig) {
            Some((family, similarity)) => vec![Finding {
                detector: DetectorId::Boilerplate,
                payload: FindingPayload::Boilerplate(BoilerplateFinding { family, similarity }),
            }],
            None => Vec::new(),
        }
    }
}

fn built_in(id: DetectorId) -> Box<dyn Detector> {
    match id {
        DetectorId::Incomplete => Box::new(IncompleteDetector),
        DetectorId::Incorrect => Box::new(IncorrectDetector),
        DetectorId::Inconsistent => Box::new(InconsistentDetector),
        DetectorId::DataSafety => Box::new(DataSafetyDetector),
        DetectorId::Purpose => Box::new(PurposeDetector),
        DetectorId::Boilerplate => Box::new(BoilerplateDetector),
    }
}

/// The detector set a [`PPChecker`](crate::PPChecker) runs.
///
/// Detectors are kept sorted by [`DetectorId::rank`], so two registries
/// holding the same detectors produce identical output regardless of
/// registration order, and the default registry's output is
/// byte-identical to the pre-registry hardwired pipeline.
pub struct DetectorRegistry {
    detectors: Vec<Box<dyn Detector>>,
}

impl Default for DetectorRegistry {
    fn default() -> Self {
        DetectorRegistry::paper()
    }
}

impl DetectorRegistry {
    /// A registry with no detectors.
    pub fn empty() -> Self {
        DetectorRegistry { detectors: Vec::new() }
    }

    /// The default registry: the paper's three detectors.
    pub fn paper() -> Self {
        DetectorRegistry::with_ids(DetectorId::PAPER)
    }

    /// All six built-in detectors.
    pub fn full() -> Self {
        DetectorRegistry::with_ids(DetectorId::ALL)
    }

    /// The built-in detectors for exactly these ids.
    pub fn with_ids(ids: &[DetectorId]) -> Self {
        let mut registry = DetectorRegistry::empty();
        for &id in ids {
            registry.register(built_in(id));
        }
        registry
    }

    /// Registers a detector, replacing any detector with the same id.
    /// The registry re-sorts by canonical rank, so registration order
    /// never shows in the output.
    pub fn register(&mut self, detector: Box<dyn Detector>) {
        self.detectors.retain(|d| d.id() != detector.id());
        self.detectors.push(detector);
        self.detectors.sort_by_key(|d| d.id().rank());
    }

    /// Registered detector ids, in run order.
    pub fn ids(&self) -> Vec<DetectorId> {
        self.detectors.iter().map(|d| d.id()).collect()
    }

    /// Whether a detector with this id is registered.
    pub fn contains(&self, id: DetectorId) -> bool {
        self.detectors.iter().any(|d| d.id() == id)
    }

    /// Number of registered detectors.
    pub fn len(&self) -> usize {
        self.detectors.len()
    }

    /// `true` when no detector is registered.
    pub fn is_empty(&self) -> bool {
        self.detectors.is_empty()
    }

    /// A stable fingerprint of the registered detector set. The checker
    /// folds it into its configuration fingerprint, so the artifact
    /// store never replays a report across a registry change.
    pub fn fingerprint(&self) -> u64 {
        let parts: Vec<u64> = self
            .detectors
            .iter()
            .map(|d| ppchecker_store::content_hash(d.id().as_str().as_bytes()))
            .collect();
        ppchecker_store::combine_hashes(&parts)
    }

    /// The ids that will actually run for this request: registered,
    /// applicable, and (when the request selects detectors) selected.
    pub(crate) fn active_ids(&self, request: &CheckRequest<'_>) -> Vec<DetectorId> {
        self.detectors
            .iter()
            .filter(|d| {
                request.detectors().is_none_or(|sel| sel.contains(&d.id())) && d.applies(request)
            })
            .map(|d| d.id())
            .collect()
    }

    /// Runs the detectors in `active`, in registry (canonical) order.
    pub(crate) fn run(&self, ctx: &DetectorCtx<'_>, active: &[DetectorId]) -> Vec<Finding> {
        let mut findings = Vec::new();
        for detector in &self.detectors {
            if active.contains(&detector.id()) {
                findings.extend(detector.run(ctx));
            }
        }
        findings
    }
}

impl fmt::Debug for DetectorRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DetectorRegistry").field("detectors", &self.ids()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_through_parse() {
        for &id in DetectorId::ALL {
            assert_eq!(DetectorId::parse(id.as_str()), Some(id));
        }
        assert_eq!(DetectorId::parse("nope"), None);
    }

    #[test]
    fn registry_sorts_by_canonical_rank() {
        let mut reversed = DetectorRegistry::empty();
        for &id in DetectorId::ALL.iter().rev() {
            reversed.register(built_in(id));
        }
        assert_eq!(reversed.ids(), DetectorId::ALL);
        assert_eq!(reversed.fingerprint(), DetectorRegistry::full().fingerprint());
    }

    #[test]
    fn registering_twice_replaces() {
        let mut r = DetectorRegistry::paper();
        r.register(built_in(DetectorId::Incomplete));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn registry_fingerprint_tracks_the_set() {
        assert_ne!(DetectorRegistry::paper().fingerprint(), DetectorRegistry::full().fingerprint());
        assert_eq!(
            DetectorRegistry::paper().fingerprint(),
            DetectorRegistry::default().fingerprint()
        );
    }

    #[test]
    fn label_parse_accepts_canonical_phrases() {
        let l = DataSafetyLabel::parse("device id").unwrap();
        assert_eq!(l.info, PrivateInfo::DeviceId);
        assert!(DataSafetyLabel::parse("flux capacitor").is_none());
    }
}
