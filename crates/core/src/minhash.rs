//! Shingled MinHash over interned policy token streams: the similarity
//! kernel behind the `boilerplate` detector.
//!
//! A policy is reduced to the set of its k-token shingles (k = 3) over
//! the interned token stream of its extracted text. The MinHash
//! signature — the minimum of each of [`SIGNATURE_LEN`] independent
//! hash permutations over that set — estimates Jaccard similarity as
//! the fraction of equal signature slots, which is what
//! [`exact_jaccard`] computes exactly for the differential tests.
//!
//! [`BoilerplateIndex`] holds one signature per policy *family*
//! representative and answers probes through MinHash-LSH banding
//! ([`BANDS`] bands of `SIGNATURE_LEN / BANDS` rows), so indexing a
//! corpus stays near-linear: a probe only compares full signatures
//! against candidates sharing at least one band, which near-duplicates
//! almost surely do and unrelated policies almost surely do not.

use ppchecker_nlp::intern::{intern, Symbol};
use std::collections::HashMap;
use std::sync::Mutex;

/// Hashes per signature.
pub const SIGNATURE_LEN: usize = 64;
/// Tokens per shingle.
pub const SHINGLE_K: usize = 3;
/// LSH bands (each of `SIGNATURE_LEN / BANDS` rows).
pub const BANDS: usize = 16;

/// A MinHash signature.
pub type Signature = [u64; SIGNATURE_LEN];

/// splitmix64: cheap, well-mixed, and stable across platforms.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Lowercases, splits on non-alphanumeric boundaries, and interns the
/// token stream of one policy's extracted text.
pub fn policy_tokens(policy_html: &str) -> Vec<Symbol> {
    let text = ppchecker_policy::html::extract_text(policy_html);
    let mut tokens = Vec::new();
    let mut word = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            word.extend(ch.to_lowercase());
        } else if !word.is_empty() {
            tokens.push(intern(&word));
            word.clear();
        }
    }
    if !word.is_empty() {
        tokens.push(intern(&word));
    }
    tokens
}

/// The k-shingle hash set of a token stream (hashed, deduplicated,
/// sorted — the set MinHash and Jaccard both operate on). A stream
/// shorter than one shingle hashes its whole prefix as a single
/// shingle so trivial policies still compare.
pub fn shingle_hashes(tokens: &[Symbol]) -> Vec<u64> {
    let mut out: Vec<u64> = if tokens.len() < SHINGLE_K {
        if tokens.is_empty() {
            Vec::new()
        } else {
            let mut h = 0xCBF29CE484222325u64;
            for t in tokens {
                h = mix(h ^ u64::from(t.id()));
            }
            vec![h]
        }
    } else {
        tokens
            .windows(SHINGLE_K)
            .map(|w| {
                let mut h = 0xCBF29CE484222325u64;
                for t in w {
                    h = mix(h ^ u64::from(t.id()));
                }
                h
            })
            .collect()
    };
    out.sort_unstable();
    out.dedup();
    out
}

/// The MinHash signature of a token stream.
pub fn signature(tokens: &[Symbol]) -> Signature {
    let shingles = shingle_hashes(tokens);
    let mut sig = [u64::MAX; SIGNATURE_LEN];
    for &s in &shingles {
        for (row, slot) in sig.iter_mut().enumerate() {
            let h = mix(s ^ mix(row as u64));
            if h < *slot {
                *slot = h;
            }
        }
    }
    sig
}

/// Estimated Jaccard similarity: the fraction of equal signature slots.
pub fn similarity(a: &Signature, b: &Signature) -> f64 {
    let equal = a.iter().zip(b.iter()).filter(|(x, y)| x == y).count();
    equal as f64 / SIGNATURE_LEN as f64
}

/// Exact Jaccard similarity of two token streams' shingle sets (the
/// quantity [`similarity`] estimates; the differential proptest bounds
/// the estimation error).
pub fn exact_jaccard(a: &[Symbol], b: &[Symbol]) -> f64 {
    let sa = shingle_hashes(a);
    let sb = shingle_hashes(b);
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let mut inter = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < sa.len() && j < sb.len() {
        match sa[i].cmp(&sb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = sa.len() + sb.len() - inter;
    inter as f64 / union as f64
}

/// The corpus-wide near-duplicate index: one signature per policy
/// family representative, bucketed for LSH probing.
///
/// `probe_insert` is the whole protocol: a policy whose best candidate
/// similarity reaches the threshold is reported as a member of that
/// family (and not inserted); otherwise it becomes a new family
/// representative. Family assignment therefore depends on stream
/// order — run the corpus through it sequentially (the scale-out
/// streaming path already is sequential at the sink).
#[derive(Debug)]
pub struct BoilerplateIndex {
    threshold: f64,
    inner: Mutex<IndexInner>,
}

#[derive(Debug, Default)]
struct IndexInner {
    reps: Vec<(String, Signature)>,
    buckets: HashMap<(u8, u64), Vec<u32>>,
}

impl BoilerplateIndex {
    /// An empty index flagging pairs at or above `threshold` estimated
    /// Jaccard similarity.
    pub fn new(threshold: f64) -> Self {
        BoilerplateIndex { threshold, inner: Mutex::new(IndexInner::default()) }
    }

    /// The similarity threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Family representatives indexed so far.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().reps.len()
    }

    /// `true` when no policy has been indexed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn band_keys(sig: &Signature) -> [(u8, u64); BANDS] {
        let rows = SIGNATURE_LEN / BANDS;
        let mut keys = [(0u8, 0u64); BANDS];
        for (band, key) in keys.iter_mut().enumerate() {
            let mut h = 0u64;
            for row in 0..rows {
                h = mix(h ^ sig[band * rows + row]);
            }
            *key = (band as u8, h);
        }
        keys
    }

    /// Probes the index with one policy's signature. Returns the family
    /// representative (package, similarity) when a candidate reaches
    /// the threshold; otherwise registers `package` as a new family
    /// representative and returns `None`.
    pub fn probe_insert(&self, package: &str, sig: &Signature) -> Option<(String, f64)> {
        let mut inner = self.inner.lock().unwrap();
        let keys = Self::band_keys(sig);
        let mut best: Option<(usize, f64)> = None;
        let mut seen: Vec<u32> = Vec::new();
        for key in &keys {
            if let Some(candidates) = inner.buckets.get(key) {
                for &c in candidates {
                    if seen.contains(&c) {
                        continue;
                    }
                    seen.push(c);
                    let sim = similarity(sig, &inner.reps[c as usize].1);
                    if sim >= self.threshold && best.is_none_or(|(_, b)| sim > b) {
                        best = Some((c as usize, sim));
                    }
                }
            }
        }
        if let Some((idx, sim)) = best {
            return Some((inner.reps[idx].0.clone(), sim));
        }
        let id = inner.reps.len() as u32;
        inner.reps.push((package.to_string(), *sig));
        for key in keys {
            inner.buckets.entry(key).or_default().push(id);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tokens(text: &str) -> Vec<Symbol> {
        policy_tokens(&format!("<html><body><p>{text}</p></body></html>"))
    }

    #[test]
    fn identical_streams_have_identical_signatures() {
        let a = tokens("we collect your location and your device id for our records");
        let b = tokens("we collect your location and your device id for our records");
        assert_eq!(signature(&a), signature(&b));
        assert_eq!(similarity(&signature(&a), &signature(&b)), 1.0);
        assert_eq!(exact_jaccard(&a, &b), 1.0);
    }

    #[test]
    fn unrelated_streams_score_low() {
        let a =
            tokens("we collect your location and device id to provide weather forecasts near you");
        let b = tokens(
            "all payments are processed by a third party gateway under separate terms entirely",
        );
        assert!(similarity(&signature(&a), &signature(&b)) < 0.3);
        assert!(exact_jaccard(&a, &b) < 0.3);
    }

    #[test]
    fn near_duplicates_score_high() {
        let base = "this privacy policy describes how we handle your information. \
                    we may collect your location, your device id, and your email address. \
                    we retain usage logs for thirty days. we never sell your personal data. \
                    contact us with questions about this policy at any time.";
        let a = tokens(base);
        let b = tokens(&format!("{base} this revision applies to release channel three."));
        let est = similarity(&signature(&a), &signature(&b));
        let exact = exact_jaccard(&a, &b);
        assert!(exact > 0.8, "exact {exact}");
        assert!(est > 0.7, "estimated {est}");
    }

    #[test]
    fn empty_and_tiny_streams_are_safe() {
        assert_eq!(exact_jaccard(&[], &[]), 1.0);
        let tiny = tokens("we");
        assert_eq!(shingle_hashes(&tiny).len(), 1);
        let _ = signature(&tiny);
        let empty = tokens("");
        assert!(shingle_hashes(&empty).is_empty());
    }

    #[test]
    fn index_assigns_members_to_their_family() {
        let index = BoilerplateIndex::new(0.8);
        // Long enough that one appended revision sentence keeps the
        // exact Jaccard well above the 0.8 threshold.
        let root = tokens(
            "this privacy policy describes how we handle your information. \
             we may collect your location, your device id, and your email address. \
             we retain usage logs for thirty days. we never sell your personal data. \
             we may share aggregate statistics with partners who help us run the service. \
             you can request deletion of your account data at any time by contacting support. \
             changes to this policy will be announced inside the application before they apply.",
        );
        let member = {
            let mut t = root.clone();
            t.extend(tokens("this revision applies to release channel three"));
            t
        };
        let other = tokens(
            "payments are processed externally. our gateway provider has separate terms. \
             no card numbers are stored by the application itself at any point.",
        );
        assert!(index.probe_insert("com.root", &signature(&root)).is_none());
        assert!(index.probe_insert("com.other", &signature(&other)).is_none());
        let (family, sim) = index.probe_insert("com.member", &signature(&member)).unwrap();
        assert_eq!(family, "com.root");
        assert!(sim >= 0.8);
        assert_eq!(index.len(), 2, "a matched member is not a new representative");
    }
}
