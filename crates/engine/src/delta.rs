//! Per-app verdict deltas between two batch runs — the reporting half of
//! incremental re-analysis.
//!
//! A versioned corpus (see `ppchecker-corpus` histories) re-runs the
//! batch after every release wave. The store makes the *compute* cheap —
//! unchanged apps replay their stored report — and this module makes the
//! *reading* cheap: [`diff_batches`] folds two [`BatchReport`]s into the
//! per-package verdict changes, so the operator sees "3 apps regressed,
//! 1 fixed, 2 new" instead of re-reading a thousand records.
//!
//! Verdicts compare by problem *shape* (which problem classes fired and
//! how many findings), not by wall time or cache behavior, so a delta is
//! deterministic for a given pair of runs regardless of worker count or
//! store warmth.

use crate::report::{AppOutcome, AppRecord, BatchReport};
use std::collections::BTreeMap;
use std::fmt;

/// The problem shape of one app's outcome: which problem classes fired,
/// with finding counts. Two runs of an unchanged app always produce
/// equal verdicts (the pipeline is deterministic), so verdict inequality
/// means the app — or the checker configuration — actually changed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Verdict {
    /// The pipeline failed (corrupt APK, worker panic).
    pub error: bool,
    /// Incomplete-policy findings (Algorithms 1–2).
    pub missed: usize,
    /// Incorrect-policy findings (Algorithms 3–4).
    pub incorrect: usize,
    /// App-vs-lib inconsistencies (Algorithm 5).
    pub inconsistent: usize,
    /// Findings from detectors beyond the paper's three (Data-Safety,
    /// purpose, boilerplate, custom). Zero under the default registry.
    pub extended: usize,
}

impl Verdict {
    /// Reads the verdict off one record.
    pub fn of_record(record: &AppRecord) -> Verdict {
        match &record.outcome {
            AppOutcome::Error(_) => Verdict { error: true, ..Verdict::default() },
            AppOutcome::Report(r) => Verdict {
                error: false,
                missed: r.missed.len(),
                incorrect: r.incorrect.len(),
                inconsistent: r.inconsistencies.len(),
                extended: r.findings.len(),
            },
        }
    }

    /// Whether any problem class fired (or the app errored).
    pub fn has_problems(&self) -> bool {
        self.error || self.missed + self.incorrect + self.inconsistent + self.extended > 0
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.error {
            return write!(f, "error");
        }
        if !self.has_problems() {
            return write!(f, "clean");
        }
        let mut parts = Vec::new();
        if self.missed > 0 {
            parts.push(format!("{} missed", self.missed));
        }
        if self.incorrect > 0 {
            parts.push(format!("{} incorrect", self.incorrect));
        }
        if self.inconsistent > 0 {
            parts.push(format!("{} inconsistent", self.inconsistent));
        }
        if self.extended > 0 {
            parts.push(format!("{} extended", self.extended));
        }
        write!(f, "{}", parts.join(", "))
    }
}

/// How one package moved between two runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaKind {
    /// Present only in the newer run.
    Added,
    /// Present only in the older run.
    Removed,
    /// Present in both with different verdicts.
    Changed,
}

/// One package's movement between two runs.
#[derive(Debug, Clone)]
pub struct AppDelta {
    /// Package name.
    pub package: String,
    /// Added, removed, or changed.
    pub kind: DeltaKind,
    /// Verdict in the older run (`None` for additions).
    pub before: Option<Verdict>,
    /// Verdict in the newer run (`None` for removals).
    pub after: Option<Verdict>,
}

impl fmt::Display for AppDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.kind, self.before, self.after) {
            (DeltaKind::Added, _, Some(after)) => write!(f, "+ {}: {}", self.package, after),
            (DeltaKind::Removed, Some(before), _) => {
                write!(f, "- {}: was {}", self.package, before)
            }
            (_, before, after) => write!(
                f,
                "~ {}: {} -> {}",
                self.package,
                before.unwrap_or_default(),
                after.unwrap_or_default(),
            ),
        }
    }
}

/// The verdict-level difference between two batch runs.
#[derive(Debug, Clone, Default)]
pub struct BatchDelta {
    /// Packages present in both runs with identical verdicts.
    pub unchanged: usize,
    /// Non-identical packages, sorted by name: additions, removals, and
    /// verdict changes. Unchanged packages are counted, not listed.
    pub deltas: Vec<AppDelta>,
}

impl BatchDelta {
    /// Whether the two runs agree on every shared package and neither
    /// adds or removes any.
    pub fn is_quiet(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Packages only in the newer run.
    pub fn added(&self) -> usize {
        self.deltas.iter().filter(|d| d.kind == DeltaKind::Added).count()
    }

    /// Packages only in the older run.
    pub fn removed(&self) -> usize {
        self.deltas.iter().filter(|d| d.kind == DeltaKind::Removed).count()
    }

    /// Packages whose verdict changed.
    pub fn changed(&self) -> usize {
        self.deltas.iter().filter(|d| d.kind == DeltaKind::Changed).count()
    }

    /// Packages whose verdict gained problems (or newly errored) — the
    /// regression headline.
    pub fn regressed(&self) -> usize {
        self.deltas
            .iter()
            .filter(|d| {
                d.kind == DeltaKind::Changed
                    && matches!((d.before, d.after), (Some(b), Some(a))
                        if (!b.error && a.error)
                            || a.missed + a.incorrect + a.inconsistent + a.extended
                                > b.missed + b.incorrect + b.inconsistent + b.extended)
            })
            .count()
    }
}

impl fmt::Display for BatchDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "delta: {} unchanged, {} changed ({} regressed), {} added, {} removed",
            self.unchanged,
            self.changed(),
            self.regressed(),
            self.added(),
            self.removed(),
        )?;
        for d in &self.deltas {
            write!(f, "\n{d}")?;
        }
        Ok(())
    }
}

/// Diffs two batch runs by package.
///
/// A package appearing more than once in one run keeps its *last*
/// record — matching the store's overwrite semantics for re-submitted
/// apps. Output order is lexicographic by package, independent of
/// submission order on either side.
pub fn diff_batches(older: &BatchReport, newer: &BatchReport) -> BatchDelta {
    let before: BTreeMap<&str, Verdict> =
        older.records.iter().map(|r| (r.package.as_str(), Verdict::of_record(r))).collect();
    let after: BTreeMap<&str, Verdict> =
        newer.records.iter().map(|r| (r.package.as_str(), Verdict::of_record(r))).collect();

    let mut delta = BatchDelta::default();
    for (package, b) in &before {
        match after.get(package) {
            None => delta.deltas.push(AppDelta {
                package: (*package).to_string(),
                kind: DeltaKind::Removed,
                before: Some(*b),
                after: None,
            }),
            Some(a) if a == b => delta.unchanged += 1,
            Some(a) => delta.deltas.push(AppDelta {
                package: (*package).to_string(),
                kind: DeltaKind::Changed,
                before: Some(*b),
                after: Some(*a),
            }),
        }
    }
    for (package, a) in &after {
        if !before.contains_key(package) {
            delta.deltas.push(AppDelta {
                package: (*package).to_string(),
                kind: DeltaKind::Added,
                before: None,
                after: Some(*a),
            });
        }
    }
    delta.deltas.sort_by(|x, y| x.package.cmp(&y.package));
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsSummary;
    use ppchecker_core::{Error, MissedInfo, Report};

    fn record(package: &str, outcome: AppOutcome) -> AppRecord {
        AppRecord { index: 0, package: package.to_string(), outcome }
    }

    fn clean(package: &str) -> AppRecord {
        record(
            package,
            AppOutcome::Report(Report { package: package.to_string(), ..Report::default() }),
        )
    }

    fn incomplete(package: &str, missed: usize) -> AppRecord {
        let report = Report {
            package: package.to_string(),
            missed: (0..missed)
                .map(|_| MissedInfo {
                    info: ppchecker_apk::PrivateInfo::Location,
                    channel: ppchecker_core::Channel::Code,
                    permission: None,
                    retained: false,
                })
                .collect(),
            ..Report::default()
        };
        record(package, AppOutcome::Report(report))
    }

    fn batch(records: Vec<AppRecord>) -> BatchReport {
        BatchReport { records, metrics: MetricsSummary::default() }
    }

    #[test]
    fn identical_runs_are_quiet() {
        let older = batch(vec![clean("com.a"), incomplete("com.b", 2)]);
        let newer = batch(vec![incomplete("com.b", 2), clean("com.a")]);
        let delta = diff_batches(&older, &newer);
        assert!(delta.is_quiet());
        assert_eq!(delta.unchanged, 2);
        assert!(delta.to_string().contains("2 unchanged"));
    }

    #[test]
    fn verdict_changes_and_membership_changes_are_reported() {
        let older = batch(vec![clean("com.a"), incomplete("com.b", 1), clean("com.gone")]);
        let newer = batch(vec![incomplete("com.a", 3), incomplete("com.b", 1), clean("com.new")]);
        let delta = diff_batches(&older, &newer);
        assert_eq!(delta.unchanged, 1);
        assert_eq!(delta.changed(), 1);
        assert_eq!(delta.added(), 1);
        assert_eq!(delta.removed(), 1);
        assert_eq!(delta.regressed(), 1, "com.a gained findings");
        let text = delta.to_string();
        assert!(text.contains("~ com.a: clean -> 3 missed"));
        assert!(text.contains("+ com.new: clean"));
        assert!(text.contains("- com.gone: was clean"));
    }

    #[test]
    fn errors_count_as_regressions() {
        let older = batch(vec![clean("com.a")]);
        let newer = batch(vec![record("com.a", AppOutcome::Error(Error::input("bad dex")))]);
        let delta = diff_batches(&older, &newer);
        assert_eq!(delta.regressed(), 1);
        assert!(delta.to_string().contains("clean -> error"));
    }

    #[test]
    fn fixes_change_without_regressing() {
        let older = batch(vec![incomplete("com.a", 2)]);
        let newer = batch(vec![clean("com.a")]);
        let delta = diff_batches(&older, &newer);
        assert_eq!(delta.changed(), 1);
        assert_eq!(delta.regressed(), 0);
    }
}
