//! `ppchecker-engine`: parallel batch-analysis runtime for PPChecker.
//!
//! The DSN 2016 study ran the pipeline over 1,197 Google Play apps and 81
//! third-party lib policies. This crate turns the single-app [`PPChecker`]
//! core into a corpus-scale runtime:
//!
//! * **Sharded scheduling** — [`Engine::run`] fans an app stream across a
//!   worker pool (`jobs` threads) over a bounded channel, so a lazy corpus
//!   source is consumed under backpressure instead of being materialized.
//!   A panicking or failing app becomes one error record; the run survives.
//! * **Artifact caching** — [`ArtifactCache`] memoizes parsed policy
//!   analyses keyed by the interned symbol of the HTML, and the ESA
//!   interpreter memoizes interpretation vectors by phrase symbol, so
//!   duplicate texts (lib policies, template policies) are analyzed
//!   exactly once per run.
//! * **Metrics** — [`MetricsSummary`] reports per-stage wall time, cache
//!   hit rates, throughput, and effective parallelism.
//! * **Deterministic aggregation** — records come back in submission
//!   order and [`BatchReport::aggregate`] is a pure fold over them, so
//!   `jobs=1` and `jobs=16` produce byte-identical aggregate reports.
//! * **Persistent warm starts** — [`Engine::with_store`] attaches a
//!   `ppchecker-store` artifact store as the second tier of every cache:
//!   parsed policies, library taint summaries, and whole app reports
//!   replay from disk across process restarts, so a re-run over an
//!   updated corpus only re-analyzes apps that actually changed
//!   ([`diff_batches`] then reports the per-app verdict movement).
//! * **A resident face** — the same scheduler is exported as
//!   [`WorkerPool`] (long-lived workers, ticketed admission control),
//!   and [`Engine::check_one`] + [`Engine::metrics_snapshot`] serve
//!   single requests against the warm caches; this is what the
//!   `ppchecker-serve` daemon builds on.
//!
//! ```
//! use ppchecker_core::PPChecker;
//! use ppchecker_engine::Engine;
//!
//! let engine = Engine::new(PPChecker::new()).with_jobs(4);
//! let batch = engine.run(Vec::new());
//! assert_eq!(batch.aggregate().apps, 0);
//! ```
//!
//! [`PPChecker`]: ppchecker_core::PPChecker

pub mod cache;
pub mod delta;
pub mod engine;
pub mod metrics;
pub mod pipeline;
pub mod report;
pub mod scheduler;

pub use cache::{ArtifactCache, CacheStats};
pub use delta::{diff_batches, AppDelta, BatchDelta, DeltaKind, Verdict};
pub use engine::{available_jobs, Engine, EngineConfig, StreamSummary};
pub use metrics::{EngineSnapshot, MetricsSummary, StoreSummary};
pub use pipeline::{sharded_stream, ShardedStream};
pub use report::{AggregateSummary, AppOutcome, AppRecord, BatchReport};
pub use scheduler::{AdmitError, AdmitTicket, PoolStats, WorkerPool};
