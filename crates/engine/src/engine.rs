//! The batch scheduler: shards an app stream across a worker pool and
//! reassembles results deterministically.
//!
//! ## Topology
//!
//! One bounded job channel feeds `jobs` workers (bounded = backpressure:
//! a slow pool stalls the producer instead of buffering the whole corpus
//! in memory). Workers pull `(index, AppInput)` pairs, run the full
//! pipeline, and push `(AppRecord, StageTimings)` into an unbounded
//! result channel — unbounded so a worker can never deadlock against the
//! producer. The caller's thread is the producer, then the collector.
//!
//! ## Shared vs per-worker state
//!
//! Shared (read-only behind `&Engine`): the [`PPChecker`] with all lib
//! policies registered, the [`ArtifactCache`], the process-wide ESA
//! interpreter. Per-worker (stack): the app being processed, its report
//! under construction, its stage timers.
//!
//! ## Fault isolation
//!
//! Each app runs inside `catch_unwind`: a panic (or a `CheckError`, e.g.
//! an unrecoverable packed dex) yields one [`AppOutcome::Error`] record
//! and the worker moves on. A poisoned app can never take down the run.
//!
//! ## Determinism
//!
//! Records are reassembled in submission order, and everything the
//! pipeline computes is a pure function of the input, so `jobs=1` and
//! `jobs=16` runs emit byte-identical record sequences and aggregates.

use crate::cache::{ArtifactCache, CacheStats};
use crate::metrics::{EngineSnapshot, MetricsSummary, StageStats, StoreSummary};
use crate::report::{AggregateSummary, AppOutcome, AppRecord, BatchReport};
use crate::scheduler;
use ppchecker_core::{
    decode_report, encode_report, AppInput, CheckOutcome, CheckRequest, Error, PPChecker, Report,
    StageTimings,
};
use ppchecker_esa::Interpreter;
use ppchecker_store::{combine_hashes, content_hash, ArtifactTier, RecordKind, Store};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// Worker-pool parameters.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads. `1` runs inline on the calling thread.
    pub jobs: usize,
    /// Bound of the job channel (backpressure depth), in apps.
    pub channel_depth: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let jobs = available_jobs();
        EngineConfig { jobs, channel_depth: 2 * jobs }
    }
}

/// Number of hardware threads available to the process.
pub fn available_jobs() -> usize {
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The batch-analysis engine: a configured checker, an artifact cache,
/// and a scheduler.
#[derive(Debug)]
pub struct Engine {
    checker: PPChecker,
    cache: ArtifactCache,
    config: EngineConfig,
    lib_policies: usize,
    /// Persistent artifact store, when attached via [`Engine::with_store`].
    /// Kept alongside the `dyn ArtifactTier` handles inside the caches so
    /// the engine can read per-kind counters for metrics.
    store: Option<Arc<Store>>,
    /// Key salt for report records: the checker's configuration
    /// fingerprint, computed once at attach time.
    report_salt: u64,
    /// Apps whose stored report replayed wholesale (cumulative).
    skipped: AtomicU64,
}

impl Engine {
    /// Wraps an already-configured checker (lib policies registered) and
    /// attaches the engine's cross-app taint-summary cache to it.
    pub fn new(checker: PPChecker) -> Self {
        let lib_policies = checker.lib_policy_count();
        let cache = ArtifactCache::new();
        let checker = checker.with_taint_summary_cache(Arc::clone(cache.taint_summaries()));
        Engine {
            checker,
            cache,
            config: EngineConfig::default(),
            lib_policies,
            store: None,
            report_salt: 0,
            skipped: AtomicU64::new(0),
        }
    }

    /// Builds an engine from a bare checker plus `(lib id, policy html)`
    /// pairs. Each lib policy is analyzed through the artifact cache, so
    /// it is parsed exactly once per run — including when the same bytes
    /// later appear as some app's own policy.
    pub fn with_lib_policies<I>(mut checker: PPChecker, libs: I) -> Self
    where
        I: IntoIterator<Item = (String, String)>,
    {
        let cache = ArtifactCache::new();
        let mut count = 0;
        for (id, html) in libs {
            let analysis = cache.policy(checker.analyzer(), &html);
            checker.register_lib_policy_analysis(&id, (*analysis).clone());
            count += 1;
        }
        let checker = checker.with_taint_summary_cache(Arc::clone(cache.taint_summaries()));
        Engine {
            checker,
            cache,
            config: EngineConfig::default(),
            lib_policies: count,
            store: None,
            report_salt: 0,
            skipped: AtomicU64::new(0),
        }
    }

    /// Attaches a persistent artifact store, turning every cache into
    /// the memory tier of a two-tier hierarchy:
    ///
    /// * parsed policies replay from disk keyed by
    ///   `content_hash(html) × analyzer fingerprint`;
    /// * library taint summaries replay keyed by lib content hash;
    /// * whole app reports replay keyed by
    ///   `policy × description × apk × checker configuration` — when that
    ///   key hits, the app's entire pipeline is skipped.
    ///
    /// Attach the store *before* the first run (typically right after
    /// construction). The checker's configuration fingerprint is frozen
    /// into the report keys here, so reconfiguring the checker after
    /// attach would replay stale reports — the builder API makes that
    /// impossible to express, since `with_store` consumes `self`.
    pub fn with_store(mut self, store: Arc<Store>) -> Self {
        let tier: Arc<dyn ArtifactTier> = Arc::clone(&store) as Arc<dyn ArtifactTier>;
        self.cache.attach_disk_tier(Arc::clone(&tier), self.checker.analyzer().fingerprint());
        self.cache.taint_summaries().attach_disk_tier(tier);
        self.report_salt = self.checker.config_fingerprint();
        self.store = Some(store);
        self
    }

    /// Sets the worker count (clamped to ≥ 1).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.config.jobs = jobs.max(1);
        self.config.channel_depth = 2 * self.config.jobs;
        self
    }

    /// Overrides the full scheduler configuration.
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config =
            EngineConfig { jobs: config.jobs.max(1), channel_depth: config.channel_depth.max(1) };
        self
    }

    /// The shared checker.
    pub fn checker(&self) -> &PPChecker {
        &self.checker
    }

    /// The artifact cache (for inspection; stats also land in metrics).
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// The attached persistent store, if any.
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.store.as_ref()
    }

    /// The report-record key of one app: every input the report is a
    /// function of, combined — policy bytes, description bytes, the APK
    /// content hash, the declared Data-Safety labels, and the checker
    /// configuration fingerprint (which folds in the detector registry
    /// and boilerplate threshold, so a `--detectors` change re-keys). Any
    /// change to any of them lands on a different key, so stale replays
    /// are structurally impossible.
    fn report_key(&self, app: &AppInput) -> u64 {
        combine_hashes(&[
            content_hash(app.policy_html.as_bytes()),
            content_hash(app.description.as_bytes()),
            app.apk.content_hash(),
            app.labels_fingerprint(),
            self.report_salt,
        ])
    }

    /// Probes the store for `app`'s full report. Any defect — no record,
    /// corruption, a decode failure, a (vanishingly unlikely) key
    /// collision against a different package — reads as a miss and the
    /// pipeline runs in full.
    fn stored_report(&self, app: &AppInput) -> Option<Report> {
        let store = self.store.as_ref()?;
        let _span = ppchecker_obs::span!("engine.store_probe");
        let bytes = store.load(RecordKind::Report, self.report_key(app))?;
        let report = decode_report(&bytes).ok()?;
        if report.package == app.package {
            self.skipped.fetch_add(1, Ordering::Relaxed);
            Some(report)
        } else {
            None
        }
    }

    /// Persists a freshly computed report under the app's input key.
    fn persist_report(&self, app: &AppInput, report: &Report) {
        if let Some(store) = &self.store {
            store.save(RecordKind::Report, self.report_key(app), &encode_report(report));
        }
    }

    /// Cumulative store counters plus the replay count, when a store is
    /// attached.
    fn store_summary(&self) -> Option<StoreSummary> {
        self.store
            .as_ref()
            .map(|s| StoreSummary::cumulative(s, self.skipped.load(Ordering::Relaxed)))
    }

    /// Runs the pipeline over every app in the stream and returns records
    /// in submission order plus run metrics.
    ///
    /// The stream is consumed incrementally under backpressure — pair it
    /// with a lazy source (e.g. a corpus `iter_apps()` generator or a
    /// directory walker) to keep peak memory at
    /// `O(jobs + channel_depth + results)` instead of `O(corpus)`. The
    /// returned records still occupy `O(corpus)`; when the consumer can
    /// process records one at a time, use [`Engine::run_streamed`] and
    /// peak memory stays constant in the stream length.
    pub fn run<I>(&self, apps: I) -> BatchReport
    where
        I: IntoIterator<Item = AppInput>,
    {
        let probe = MetricsProbe::begin(self);

        let jobs = self.config.jobs.max(1);
        let mut outputs =
            if jobs == 1 { self.run_serial(apps) } else { self.run_parallel(apps, jobs) };
        outputs.sort_by_key(|(record, _)| record.index);

        let mut stage_totals = StageTimings::default();
        let mut aggregate = AggregateSummary::default();
        let mut records = Vec::with_capacity(outputs.len());
        for (record, timings) in outputs {
            stage_totals.accumulate(&timings);
            aggregate.accumulate(&record);
            records.push(record);
        }

        let mut metrics = probe.finish(self, jobs, records.len(), aggregate.errors, stage_totals);
        metrics.detector_findings = aggregate.detector_findings;
        BatchReport { records, metrics }
    }

    /// Runs the pipeline over the stream, handing each record to `sink`
    /// in submission order *as it completes* instead of materializing a
    /// record vector. Peak memory is `O(jobs + channel_depth)` apps and
    /// records — constant in the stream length — which is what lets a
    /// 100k–1M-app corpus run to completion in a fixed footprint.
    ///
    /// Everything else matches [`Engine::run`]: determinism (`jobs = 1`
    /// and `jobs = 16` hand `sink` byte-identical record sequences),
    /// fault isolation, store replay, cache accounting. The aggregate is
    /// folded incrementally via [`AggregateSummary::accumulate`], so the
    /// returned [`StreamSummary`] equals what `run(..).aggregate()` would
    /// have produced.
    ///
    /// The producer half of the pipeline moves to a scoped thread, hence
    /// the extra `I::IntoIter: Send` bound — satisfied by any generator
    /// whose state is plain data (the corpus streamers, vectors, ranges).
    pub fn run_streamed<I, S>(&self, apps: I, mut sink: S) -> StreamSummary
    where
        I: IntoIterator<Item = AppInput>,
        I::IntoIter: Send,
        S: FnMut(AppRecord),
    {
        let probe = MetricsProbe::begin(self);
        let jobs = self.config.jobs.max(1);
        let mut stage_totals = StageTimings::default();
        let mut aggregate = AggregateSummary::default();
        if jobs == 1 {
            let mut queue = apps.into_iter().enumerate().peekable();
            while let Some((index, app)) = queue.next() {
                if let Some((_, next)) = queue.peek() {
                    prefetch_app_input(next);
                }
                let (record, timings) = self.process_one(index, app);
                stage_totals.accumulate(&timings);
                aggregate.accumulate(&record);
                sink(record);
            }
        } else {
            scheduler::run_scoped_streamed(
                apps,
                jobs,
                self.config.channel_depth,
                |index, app| self.process_one(index, app),
                &mut |_, (record, timings): (AppRecord, StageTimings)| {
                    stage_totals.accumulate(&timings);
                    aggregate.accumulate(&record);
                    sink(record);
                },
            );
        }
        let mut metrics = probe.finish(self, jobs, aggregate.apps, aggregate.errors, stage_totals);
        metrics.detector_findings = aggregate.detector_findings;
        StreamSummary { aggregate, metrics }
    }

    fn run_serial<I>(&self, apps: I) -> Vec<(AppRecord, StageTimings)>
    where
        I: IntoIterator<Item = AppInput>,
    {
        // Batch-level prefetch: while app N runs, pull the head of app
        // N+1's input buffers toward the caches. The worklist is known one
        // step ahead, so the first-touch misses (content hashing for the
        // store key, then the policy parse) overlap with real work.
        let mut queue = apps.into_iter().enumerate().peekable();
        let mut out = Vec::new();
        while let Some((index, app)) = queue.next() {
            if let Some((_, next)) = queue.peek() {
                prefetch_app_input(next);
            }
            out.push(self.process_one(index, app));
        }
        out
    }

    fn run_parallel<I>(&self, apps: I, jobs: usize) -> Vec<(AppRecord, StageTimings)>
    where
        I: IntoIterator<Item = AppInput>,
    {
        scheduler::run_scoped(apps, jobs, self.config.channel_depth, |index, app| {
            self.process_one(index, app)
        })
    }

    /// Runs one app through the full pipeline via the engine's shared
    /// caches — the single-request entry point a resident service calls
    /// per admitted request. Cache warmth accumulates across calls
    /// exactly as it does within one [`Engine::run`].
    ///
    /// # Errors
    ///
    /// Returns the pipeline's structured [`Error`]; worker panics are
    /// caught and surfaced as [`Error::worker`].
    pub fn check_one(&self, app: &AppInput) -> Result<CheckOutcome, Error> {
        if let Some(report) = self.stored_report(app) {
            return Ok(CheckOutcome {
                report,
                timings: Some(StageTimings::default()),
                trace: None,
            });
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _span = ppchecker_obs::span!("app.check", app.package);
            self.checker.check(
                CheckRequest::builder(app)
                    .policy_provider(|analyzer, html| self.cache.policy(analyzer, html))
                    .capture_timings()
                    .build(),
            )
        }));
        match outcome {
            Ok(result) => {
                if let Ok(checked) = &result {
                    self.persist_report(app, &checked.report);
                }
                result
            }
            Err(panic) => Err(Error::worker(panic_message(&panic))),
        }
    }

    /// Cumulative cache and occupancy counters since process start — the
    /// engine's metrics-snapshot API. Unlike the per-run deltas inside
    /// [`BatchReport`]'s [`MetricsSummary`], these are running totals, so
    /// a resident service can scrape them at any moment (and difference
    /// two scrapes itself if it wants a window).
    pub fn metrics_snapshot(&self) -> EngineSnapshot {
        let esa = Interpreter::shared();
        let (esa_hits, esa_misses) = esa.vector_cache_stats();
        let (pair_hits, pair_misses) = esa.pair_memo_stats();
        EngineSnapshot {
            lib_policies: self.lib_policies,
            policy_cache: self.cache.stats(),
            esa_cache: CacheStats {
                hits: esa_hits,
                misses: esa_misses,
                entries: esa.vector_cache_len(),
            },
            esa_pair_memo: CacheStats {
                hits: pair_hits,
                misses: pair_misses,
                entries: esa.pair_memo_len(),
            },
            esa_pruned: esa.pruned_comparisons(),
            taint_summary_cache: self.cache.taint_summary_stats(),
            interner: ppchecker_nlp::Interner::global().stats(),
            store: self.store_summary(),
        }
    }

    /// Runs one app through the full pipeline, converting failures (and
    /// panics) into error records. With a store attached, an unchanged
    /// app (same policy, description, APK, and checker configuration as
    /// a previously persisted run) replays its stored report and skips
    /// the pipeline entirely.
    fn process_one(&self, index: usize, app: AppInput) -> (AppRecord, StageTimings) {
        // Parallel workers receive apps built on the producer thread; start
        // the first-touch loads before the store-key hashing walks them.
        prefetch_app_input(&app);
        let package = app.package.clone();
        if let Some(report) = self.stored_report(&app) {
            let record = AppRecord { index, package, outcome: AppOutcome::Report(report) };
            return (record, StageTimings::default());
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _span = ppchecker_obs::span!("app.check", app.package);
            self.checker.check(
                CheckRequest::builder(&app)
                    .policy_provider(|analyzer, html| self.cache.policy(analyzer, html))
                    .capture_timings()
                    .build(),
            )
        }));
        match outcome {
            Ok(Ok(checked)) => {
                self.persist_report(&app, &checked.report);
                let timings = checked.timings.unwrap_or_default();
                let record = AppRecord {
                    index,
                    package,
                    outcome: AppOutcome::Report(checked.into_report()),
                };
                (record, timings)
            }
            Ok(Err(error)) => (
                AppRecord { index, package, outcome: AppOutcome::Error(error) },
                StageTimings::default(),
            ),
            Err(panic) => (
                AppRecord {
                    index,
                    package,
                    outcome: AppOutcome::Error(Error::worker(panic_message(&panic))),
                },
                StageTimings::default(),
            ),
        }
    }
}

/// What a streamed run returns once the sink has seen every record: the
/// incrementally folded aggregate plus the usual run metrics. Equivalent
/// to a [`BatchReport`] minus the record vector.
#[derive(Debug, Clone)]
pub struct StreamSummary {
    /// Deterministic aggregate counts, folded record by record.
    pub aggregate: AggregateSummary,
    /// Run metrics (timings are measurements, counts are deterministic).
    pub metrics: MetricsSummary,
}

/// The before-side snapshot of every counter a [`MetricsSummary`] is a
/// delta over. Both run shapes ([`Engine::run`] and
/// [`Engine::run_streamed`]) begin one and finish it, so the metrics
/// accounting cannot drift between them.
struct MetricsProbe {
    started: Instant,
    obs_before: Vec<(&'static str, ppchecker_obs::HistogramSnapshot)>,
    policy_before: CacheStats,
    taint_before: CacheStats,
    store_before: Option<StoreSummary>,
    esa_hits_before: u64,
    esa_misses_before: u64,
    pair_hits_before: u64,
    pair_misses_before: u64,
    pruned_before: u64,
}

impl MetricsProbe {
    fn begin(engine: &Engine) -> Self {
        let esa = Interpreter::shared();
        let (esa_hits_before, esa_misses_before) = esa.vector_cache_stats();
        let (pair_hits_before, pair_misses_before) = esa.pair_memo_stats();
        MetricsProbe {
            started: Instant::now(),
            obs_before: ppchecker_obs::snapshot(),
            policy_before: engine.cache.stats(),
            taint_before: engine.cache.taint_summary_stats(),
            store_before: engine.store_summary(),
            esa_hits_before,
            esa_misses_before,
            pair_hits_before,
            pair_misses_before,
            pruned_before: esa.pruned_comparisons(),
        }
    }

    fn finish(
        self,
        engine: &Engine,
        jobs: usize,
        apps: usize,
        errors: usize,
        stage_totals: StageTimings,
    ) -> MetricsSummary {
        let esa = Interpreter::shared();
        let policy_after = engine.cache.stats();
        let taint_after = engine.cache.taint_summary_stats();
        let (esa_hits_after, esa_misses_after) = esa.vector_cache_stats();
        let (pair_hits_after, pair_misses_after) = esa.pair_memo_stats();
        let stage_quantiles = stage_quantiles_since(&self.obs_before);
        MetricsSummary {
            jobs,
            apps,
            errors,
            lib_policies: engine.lib_policies,
            wall_time: self.started.elapsed(),
            stage_totals,
            stage_quantiles,
            policy_cache: CacheStats {
                hits: policy_after.hits - self.policy_before.hits,
                misses: policy_after.misses - self.policy_before.misses,
                entries: policy_after.entries,
            },
            esa_cache: CacheStats {
                hits: esa_hits_after - self.esa_hits_before,
                misses: esa_misses_after - self.esa_misses_before,
                entries: esa.vector_cache_len(),
            },
            esa_pair_memo: CacheStats {
                hits: pair_hits_after - self.pair_hits_before,
                misses: pair_misses_after - self.pair_misses_before,
                entries: esa.pair_memo_len(),
            },
            esa_pruned: esa.pruned_comparisons() - self.pruned_before,
            taint_summary_cache: CacheStats {
                hits: taint_after.hits - self.taint_before.hits,
                misses: taint_after.misses - self.taint_before.misses,
                entries: taint_after.entries,
            },
            detector_findings: [0; ppchecker_core::DetectorId::COUNT],
            interner: ppchecker_nlp::Interner::global().stats(),
            store: engine
                .store_summary()
                .map(|after| after.delta_since(&self.store_before.unwrap_or_default())),
        }
    }
}

/// The per-span distribution deltas since `before`, for every span that
/// recorded during the run. Histograms are striped across threads;
/// `snapshot()` merges the stripes, so a name's delta aggregates every
/// worker shard (stripe merging is commutative and associative — worker
/// assignment cannot change the result).
fn stage_quantiles_since(
    before: &[(&'static str, ppchecker_obs::HistogramSnapshot)],
) -> Vec<StageStats> {
    let earlier: std::collections::HashMap<&'static str, &ppchecker_obs::HistogramSnapshot> =
        before.iter().map(|(name, snap)| (*name, snap)).collect();
    let empty = ppchecker_obs::HistogramSnapshot::default();
    ppchecker_obs::snapshot()
        .into_iter()
        .filter_map(|(name, after)| {
            let delta = after.delta_since(earlier.get(name).copied().unwrap_or(&empty));
            (delta.count > 0).then(|| StageStats::from_snapshot(name, &delta))
        })
        .collect()
}

/// Best-effort prefetch of the head of one app's input buffers — the
/// policy HTML and description strings that the store key's content
/// hashing and the policy stage touch first. A hint only: it cannot
/// fault, and it costs a few cycles when the data is already resident.
fn prefetch_app_input(app: &AppInput) {
    prefetch_head(app.policy_html.as_bytes());
    prefetch_head(app.description.as_bytes());
}

/// Prefetches up to the first four cache lines of `bytes` (no-op off
/// x86-64).
fn prefetch_head(bytes: &[u8]) {
    #[cfg(target_arch = "x86_64")]
    {
        let lines = bytes.len().div_ceil(64).min(4);
        for line in 0..lines {
            // SAFETY: line * 64 < bytes.len() by construction, and
            // _mm_prefetch is a cache hint with no architectural effect.
            unsafe {
                std::arch::x86_64::_mm_prefetch(
                    bytes.as_ptr().add(line * 64) as *const i8,
                    std::arch::x86_64::_MM_HINT_T0,
                );
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = bytes;
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "opaque panic payload"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppchecker_apk::{Apk, ComponentKind, Dex, Manifest, Permission};

    fn app(i: usize, policy: &str) -> AppInput {
        let package = format!("com.engine.test{i}");
        let mut manifest = Manifest::new(&package);
        manifest.add_permission(Permission::AccessFineLocation);
        manifest.add_component(ComponentKind::Activity, &format!("{package}.Main"), true);
        let dex = Dex::builder()
            .class(&format!("{package}.Main"), |c| {
                c.extends("android.app.Activity");
                c.method("onCreate", 1, |m| {
                    m.invoke_virtual("android.location.Location", "getLatitude", &[0], Some(1));
                });
            })
            .build();
        AppInput {
            package,
            policy_html: format!("<html><body><p>{policy}</p></body></html>"),
            description: "A handy utility app.".to_string(),
            apk: Apk::new(manifest, dex),
            labels: Vec::new(),
        }
    }

    fn corrupt_app(i: usize) -> AppInput {
        let package = format!("com.engine.corrupt{i}");
        let manifest = Manifest::new(&package);
        AppInput {
            package,
            policy_html: "<p>we collect nothing.</p>".to_string(),
            description: "Broken app.".to_string(),
            apk: Apk::from_packed_blob(manifest, vec![0xDE, 0xAD, 0xBE, 0xEF]),
            labels: Vec::new(),
        }
    }

    fn apps(n: usize) -> Vec<AppInput> {
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    app(i, "we may collect your location.")
                } else {
                    app(i, "we collect your email address.")
                }
            })
            .collect()
    }

    #[test]
    fn serial_and_parallel_agree() {
        let serial = Engine::new(PPChecker::new()).with_jobs(1).run(apps(12));
        let parallel = Engine::new(PPChecker::new()).with_jobs(4).run(apps(12));
        assert_eq!(serial.records.len(), 12);
        assert_eq!(serial.aggregate(), parallel.aggregate());
        for (s, p) in serial.records.iter().zip(parallel.records.iter()) {
            assert_eq!(s.index, p.index);
            assert_eq!(s.package, p.package);
            assert_eq!(
                format!("{:?}", s.outcome),
                format!("{:?}", p.outcome),
                "record {} diverged between jobs=1 and jobs=4",
                s.index
            );
        }
    }

    #[test]
    fn streamed_run_matches_materialized_run() {
        let engine = Engine::new(PPChecker::new()).with_jobs(4);
        let materialized = engine.run(apps(30));
        let mut streamed_records = Vec::new();
        let summary = engine.run_streamed(apps(30), |record| streamed_records.push(record));
        assert_eq!(summary.aggregate, materialized.aggregate());
        assert_eq!(streamed_records.len(), materialized.records.len());
        for (s, m) in streamed_records.iter().zip(materialized.records.iter()) {
            assert_eq!(s.index, m.index);
            assert_eq!(s.package, m.package);
            assert_eq!(format!("{:?}", s.outcome), format!("{:?}", m.outcome));
        }
        assert_eq!(summary.metrics.apps, 30);
    }

    #[test]
    fn streamed_run_is_jobs_invariant() {
        let mut serial = Vec::new();
        let serial_summary = Engine::new(PPChecker::new())
            .with_jobs(1)
            .run_streamed(apps(17), |r| serial.push(format!("{:?}", r.outcome)));
        let mut parallel = Vec::new();
        let parallel_summary = Engine::new(PPChecker::new())
            .with_jobs(4)
            .run_streamed(apps(17), |r| parallel.push(format!("{:?}", r.outcome)));
        assert_eq!(serial, parallel);
        assert_eq!(serial_summary.aggregate, parallel_summary.aggregate);
    }

    #[test]
    fn streamed_run_replays_from_the_store() {
        let (dir, store) = scratch_store("streamed");
        let engine = Engine::new(PPChecker::new()).with_store(Arc::clone(&store)).with_jobs(2);
        let cold = engine.run_streamed(apps(8), |_| {});
        assert_eq!(cold.metrics.store.as_ref().expect("store metrics").apps_skipped, 0);
        let warm = engine.run_streamed(apps(8), |_| {});
        assert_eq!(warm.metrics.store.as_ref().expect("store metrics").apps_skipped, 8);
        assert_eq!(cold.aggregate, warm.aggregate);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn records_come_back_in_submission_order() {
        let batch = Engine::new(PPChecker::new()).with_jobs(3).run(apps(20));
        for (i, record) in batch.records.iter().enumerate() {
            assert_eq!(record.index, i);
        }
    }

    #[test]
    fn corrupt_app_yields_one_error_record() {
        let mut inputs = apps(6);
        inputs.insert(3, corrupt_app(99));
        let batch = Engine::new(PPChecker::new()).with_jobs(2).run(inputs);
        assert_eq!(batch.records.len(), 7);
        assert_eq!(batch.metrics.errors, 1);
        let error = batch.records[3].error().unwrap();
        assert_eq!(error.stage(), ppchecker_core::Stage::StaticAnalysis);
        assert!(error.to_string().contains("static analysis failed"));
        assert!(batch.records.iter().filter(|r| r.report().is_some()).count() == 6);
    }

    #[test]
    fn duplicate_policies_hit_the_cache() {
        let batch = Engine::new(PPChecker::new()).with_jobs(2).run(apps(10));
        // 10 apps, 2 distinct policy texts.
        assert_eq!(batch.metrics.policy_cache.misses, 2);
        assert_eq!(batch.metrics.policy_cache.hits, 8);
    }

    #[test]
    fn lib_policies_are_analyzed_once_through_the_cache() {
        let libs = vec![
            ("unityads".to_string(), "<p>we may collect your device id.</p>".to_string()),
            ("admob".to_string(), "<p>we may collect your location.</p>".to_string()),
        ];
        let engine = Engine::with_lib_policies(PPChecker::new(), libs);
        assert_eq!(engine.checker().lib_policy_count(), 2);
        let before = engine.cache().stats();
        assert_eq!(before.misses, 2, "each lib policy parsed exactly once");
        let batch = engine.with_jobs(2).run(apps(8));
        // Lib registration happened before the run; the run itself only
        // pays for the two distinct app policy texts.
        assert_eq!(batch.metrics.policy_cache.misses, 2);
        assert_eq!(batch.metrics.lib_policies, 2);
    }

    #[test]
    fn shared_lib_taint_summaries_hit_across_apps() {
        let inputs: Vec<AppInput> = (0..6)
            .map(|i| {
                let package = format!("com.libuser{i}");
                let mut manifest = Manifest::new(&package);
                manifest.add_component(ComponentKind::Activity, &format!("{package}.Main"), true);
                let dex = Dex::builder()
                    .class("com.google.android.gms.ads.Sdk", |c| {
                        c.method("init", 1, |m| {
                            m.invoke_virtual(
                                "android.telephony.TelephonyManager",
                                "getDeviceId",
                                &[0],
                                Some(1),
                            );
                            m.invoke_static("android.util.Log", "d", &[1], None);
                            m.ret(Some(1));
                        });
                    })
                    .class(&format!("{package}.Main"), |c| {
                        c.extends("android.app.Activity");
                        c.method("onCreate", 1, |m| {
                            m.invoke_virtual(
                                "com.google.android.gms.ads.Sdk",
                                "init",
                                &[0],
                                Some(1),
                            );
                        });
                    })
                    .build();
                AppInput {
                    package,
                    policy_html: "<p>we may collect your device id.</p>".to_string(),
                    description: "An app with an embedded ad SDK.".to_string(),
                    apk: Apk::new(manifest, dex),
                    labels: Vec::new(),
                }
            })
            .collect();
        let batch = Engine::new(PPChecker::new()).with_jobs(2).run(inputs);
        assert_eq!(batch.metrics.errors, 0);
        // One distinct lib content across six apps: summarized once,
        // replayed five times.
        assert_eq!(batch.metrics.taint_summary_cache.misses, 1);
        assert_eq!(batch.metrics.taint_summary_cache.hits, 5);
        assert_eq!(batch.metrics.taint_summary_cache.entries, 1);
        assert!(batch.metrics.to_string().contains("taint summaries: 5 hits / 1 misses"));
    }

    fn scratch_store(name: &str) -> (std::path::PathBuf, Arc<Store>) {
        let dir =
            std::env::temp_dir().join(format!("ppengine-store-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(Store::open(&dir).expect("open store"));
        (dir, store)
    }

    #[test]
    fn warm_rerun_skips_every_unchanged_app() {
        let (dir, store) = scratch_store("warm");
        let cold =
            Engine::new(PPChecker::new()).with_store(Arc::clone(&store)).with_jobs(2).run(apps(10));
        let cold_store = cold.metrics.store.expect("store metrics present");
        assert_eq!(cold_store.apps_skipped, 0, "first run computes everything");
        assert_eq!(cold_store.reports.writes, 10);

        // A fresh engine (fresh memory tiers — a new process, in effect)
        // over the same store replays every report.
        let warm_store = Arc::new(Store::open(&dir).expect("reopen store"));
        let warm = Engine::new(PPChecker::new()).with_store(warm_store).with_jobs(2).run(apps(10));
        let warm_stats = warm.metrics.store.expect("store metrics present");
        assert_eq!(warm_stats.apps_skipped, 10, "all unchanged apps skipped");
        assert_eq!(warm_stats.reports.writes, 0, "nothing recomputed, nothing rewritten");
        assert_eq!(warm.metrics.taint_summary_cache.misses, 0, "no taint kernel runs");

        // Byte-identical results either way.
        assert_eq!(cold.aggregate(), warm.aggregate());
        for (c, w) in cold.records.iter().zip(warm.records.iter()) {
            assert_eq!(format!("{:?}", c.outcome), format!("{:?}", w.outcome));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn only_changed_apps_recompute() {
        let (dir, store) = scratch_store("delta");
        let engine = Engine::new(PPChecker::new()).with_store(Arc::clone(&store)).with_jobs(2);
        let first = engine.run(apps(10));

        // Mutate one app's policy; everyone else is unchanged.
        let mut second_wave = apps(10);
        second_wave[3].policy_html =
            "<html><body><p>we no longer collect anything at all.</p></body></html>".into();
        let second = engine.run(second_wave);
        let stats = second.metrics.store.expect("store metrics present");
        assert_eq!(stats.apps_skipped, 9, "only the mutated app re-analyzed");
        assert_eq!(stats.reports.writes, 1);

        let movement = crate::delta::diff_batches(&first, &second);
        assert_eq!(movement.unchanged + movement.changed(), 10);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_change_invalidates_stored_reports() {
        let (dir, store) = scratch_store("config");
        let _ = Engine::new(PPChecker::new()).with_store(Arc::clone(&store)).run(apps(4));
        let reopened = Arc::new(Store::open(&dir).expect("reopen"));
        let strict = PPChecker::new().with_similarity_threshold(0.99);
        let rerun = Engine::new(strict).with_store(reopened).run(apps(4));
        let stats = rerun.metrics.store.expect("store metrics present");
        assert_eq!(stats.apps_skipped, 0, "different checker config, different keys");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_store_recomputes_cleanly() {
        let (dir, store) = scratch_store("corrupt");
        let cold = Engine::new(PPChecker::new()).with_store(Arc::clone(&store)).run(apps(6));

        // Truncate every report record on disk.
        let reports_dir = dir.join("objects").join("report");
        let mut truncated = 0;
        for shard in std::fs::read_dir(&reports_dir).expect("report shards").flatten() {
            for entry in std::fs::read_dir(shard.path()).expect("shard").flatten() {
                let bytes = std::fs::read(entry.path()).expect("record bytes");
                std::fs::write(entry.path(), &bytes[..bytes.len() / 2]).expect("truncate");
                truncated += 1;
            }
        }
        assert_eq!(truncated, 6);

        let reopened = Arc::new(Store::open(&dir).expect("reopen"));
        let recovered = Engine::new(PPChecker::new()).with_store(reopened).run(apps(6));
        let stats = recovered.metrics.store.expect("store metrics present");
        assert_eq!(stats.apps_skipped, 0, "corrupt records never replay");
        assert_eq!(stats.reports.corrupt, 6);
        assert_eq!(stats.reports.writes, 6, "recomputed reports overwrite the corruption");
        assert_eq!(cold.aggregate(), recovered.aggregate());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn check_one_replays_from_the_store() {
        let (dir, store) = scratch_store("checkone");
        let engine = Engine::new(PPChecker::new()).with_store(Arc::clone(&store));
        let input = app(0, "we may collect your location.");
        let first = engine.check_one(&input).expect("first check");
        let again = engine.check_one(&input).expect("replayed check");
        assert_eq!(format!("{:?}", first.report), format!("{:?}", again.report));
        let snapshot = engine.metrics_snapshot().store.expect("store metrics");
        assert_eq!(snapshot.apps_skipped, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_stream_is_fine() {
        let batch = Engine::new(PPChecker::new()).with_jobs(4).run(Vec::new());
        assert!(batch.records.is_empty());
        assert_eq!(batch.aggregate().apps, 0);
    }

    #[test]
    fn stage_totals_accumulate() {
        let batch = Engine::new(PPChecker::new()).with_jobs(1).run(apps(4));
        assert!(batch.metrics.stage_totals.total() > std::time::Duration::ZERO);
        assert!(batch.metrics.throughput() > 0.0);
    }
}
