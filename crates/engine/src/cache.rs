//! Content-addressed artifact cache.
//!
//! Policy texts repeat across a corpus — the 81 third-party lib policies
//! are checked against every app embedding them, template policies are
//! shared by whole app families, and re-runs see identical bytes. The
//! cache interns each policy's HTML and keys parsed [`PolicyAnalysis`]
//! results by the resulting [`Symbol`], so each distinct text is pushed
//! through the NLP pipeline exactly once per run regardless of worker
//! count, collisions are impossible by construction (the interner
//! compares bytes, not hashes), and repeat lookups probe a `u32`-keyed
//! map. The trade-off: each *distinct* policy text stays resident in the
//! interner for the life of the process — bounded by corpus text volume,
//! which the resident analyses already dominate (see DESIGN.md §9).
//!
//! ## The disk tier
//!
//! When a persistent [`ArtifactTier`] is attached (see
//! [`ArtifactCache::attach_disk_tier`]), the cache becomes the memory
//! tier of a two-tier hierarchy: a memory miss probes the store under
//! `combine(content_hash(html), analyzer_fingerprint)` before paying for
//! the NLP pipeline, promotes a decoded record into memory, and persists
//! every freshly computed analysis. The fingerprint in the key means a
//! reconfigured analyzer (different patterns, different constraint mode)
//! can never replay a stale parse — it simply misses and recomputes
//! under the new key. Disk-tier hits count as cache hits, preserving the
//! invariant that `misses` equals the number of analyses *computed* by
//! this process.

use ppchecker_nlp::{intern, Symbol};
use ppchecker_policy::{decode_analysis, encode_analysis, PolicyAnalysis, PolicyAnalyzer};
use ppchecker_static::TaintSummaryCache;
use ppchecker_store::{combine_hashes, content_hash, ArtifactTier, RecordKind};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Hit/miss counters of one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compute (== number of distinct texts analyzed).
    pub misses: u64,
    /// Entries resident at snapshot time.
    pub entries: usize,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 when empty.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Upper bound on resident policy analyses. Past this the cache stops
/// admitting new entries (hits still serve, misses still compute) — the
/// same stop-admitting idiom as the ESA vector cache — so a week-long
/// daemon fed an unbounded stream of distinct policies holds at most
/// this many parsed analyses. 32k entries ≈ hundreds of MB worst case;
/// batch runs over the paper corpus use a few hundred.
pub const POLICY_CACHE_CAP: usize = 32_768;

/// Thread-safe memo of parsed policy analyses, shared by all workers of
/// a batch run.
#[derive(Debug)]
pub struct ArtifactCache {
    policies: RwLock<HashMap<Symbol, Arc<PolicyAnalysis>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    cap: usize,
    /// Cross-app library taint-summary store, keyed by lib content hash
    /// (see `ppchecker_static::summary`). Shared with the checker via
    /// `Arc` so the taint kernel inside workers and the engine's metrics
    /// observe the same counters.
    taint_summaries: Arc<TaintSummaryCache>,
    /// Optional persistent tier plus the analyzer fingerprint folded
    /// into every disk key. Write-once: the first attach wins.
    disk: OnceLock<(Arc<dyn ArtifactTier>, u64)>,
}

impl Default for ArtifactCache {
    fn default() -> Self {
        ArtifactCache {
            policies: RwLock::default(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            cap: POLICY_CACHE_CAP,
            taint_summaries: Arc::default(),
            disk: OnceLock::new(),
        }
    }
}

impl ArtifactCache {
    /// An empty cache.
    pub fn new() -> Self {
        ArtifactCache::default()
    }

    /// An empty cache with a custom entry cap (tests; `0` means
    /// admit nothing).
    pub fn with_cap(cap: usize) -> Self {
        ArtifactCache { cap, ..ArtifactCache::default() }
    }

    /// The entry cap.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Attaches a persistent tier consulted on memory misses and fed by
    /// fresh computes. `analyzer_fingerprint` is folded into every disk
    /// key so a configuration change invalidates stored parses. The
    /// first attach wins; later calls are ignored.
    pub fn attach_disk_tier(&self, tier: Arc<dyn ArtifactTier>, analyzer_fingerprint: u64) {
        let _ = self.disk.set((tier, analyzer_fingerprint));
    }

    /// Whether a persistent tier is attached.
    pub fn has_disk_tier(&self) -> bool {
        self.disk.get().is_some()
    }

    /// Returns the analysis of `html`, resolving through the memory
    /// tier, then the disk tier (when attached), then computing with
    /// `analyzer` on first sight of the text.
    pub fn policy(&self, analyzer: &PolicyAnalyzer, html: &str) -> Arc<PolicyAnalysis> {
        let _span = ppchecker_obs::span!("engine.cache_probe");
        let key = intern(html);
        if let Some(hit) = self.policies.read().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        let disk_key = self
            .disk
            .get()
            .map(|(_, salt)| combine_hashes(&[content_hash(html.as_bytes()), *salt]));
        if let Some(stored) = self.load_from_disk(disk_key) {
            return self.admit(key, stored, true).0;
        }
        // Analyze outside the write lock; a concurrent duplicate costs
        // one redundant parse but never blocks other texts. First insert
        // wins so every consumer shares one allocation, and only the
        // winner counts a miss — the loser's lookup resolves from the
        // cache, so `misses` always equals the number of distinct texts.
        let fresh = Arc::new(analyzer.analyze_html(html));
        let (out, won) = self.admit(key, fresh, false);
        if won {
            if let (Some((tier, _)), Some(disk_key)) = (self.disk.get(), disk_key) {
                tier.save(RecordKind::Policy, disk_key, &encode_analysis(&out));
            }
        }
        out
    }

    /// Probes the disk tier. Any defect — no record, corruption, a wire
    /// decode failure — reads as `None`, so the caller recomputes and
    /// overwrites. Corruption can cost time, never correctness.
    fn load_from_disk(&self, disk_key: Option<u64>) -> Option<Arc<PolicyAnalysis>> {
        let (tier, _) = self.disk.get()?;
        let bytes = tier.load(RecordKind::Policy, disk_key?)?;
        decode_analysis(&bytes).ok().map(Arc::new)
    }

    /// Inserts under the cap-bounded first-insert-wins discipline and
    /// counts the lookup: a replay (memory race loser or disk-tier hit)
    /// is a hit, a fresh compute a miss — so `misses` always equals the
    /// number of analyses computed by this process. Returns the shared
    /// analysis and whether this call won the race (the winner, and only
    /// the winner, persists a freshly computed analysis to disk).
    fn admit(
        &self,
        key: Symbol,
        candidate: Arc<PolicyAnalysis>,
        from_disk: bool,
    ) -> (Arc<PolicyAnalysis>, bool) {
        let mut map = self.policies.write().expect("cache lock");
        if let Some(hit) = map.get(&key) {
            let out = Arc::clone(hit);
            drop(map);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (out, false);
        }
        // Cap-bounded admission (the ESA vector-cache idiom): at capacity
        // the analysis is still returned, just not retained, so a
        // resident process can't accrete unbounded parsed analyses.
        if map.len() < self.cap {
            map.insert(key, Arc::clone(&candidate));
        }
        drop(map);
        let counter = if from_disk { &self.hits } else { &self.misses };
        counter.fetch_add(1, Ordering::Relaxed);
        (candidate, true)
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.policies.read().expect("cache lock").len(),
        }
    }

    /// The shared library taint-summary cache (to clone into a checker).
    pub fn taint_summaries(&self) -> &Arc<TaintSummaryCache> {
        &self.taint_summaries
    }

    /// Snapshot of the taint-summary cache counters.
    pub fn taint_summary_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.taint_summaries.hits(),
            misses: self.taint_summaries.misses(),
            entries: self.taint_summaries.entries(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_texts_distinct_keys() {
        let a = intern("we collect location");
        let b = intern("we collect location!");
        let c = intern("we collect locatioN");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, intern("we collect location"));
    }

    #[test]
    fn repeated_text_analyzed_once() {
        let cache = ArtifactCache::new();
        let analyzer = PolicyAnalyzer::new();
        let html = "<p>we may collect your location.</p>";
        let first = cache.policy(&analyzer, html);
        let again = cache.policy(&analyzer, html);
        assert!(Arc::ptr_eq(&first, &again), "same allocation shared");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cap_stops_admission_but_not_results() {
        let cache = ArtifactCache::with_cap(1);
        let analyzer = PolicyAnalyzer::new();
        let first = cache.policy(&analyzer, "<p>we collect your location.</p>");
        let second = cache.policy(&analyzer, "<p>we collect your contacts.</p>");
        assert!(!first.sentences.is_empty());
        assert!(!second.sentences.is_empty());
        let stats = cache.stats();
        assert_eq!(stats.entries, 1, "second text not retained past the cap");
        assert_eq!(stats.misses, 2);
        // The capped-out text recomputes on every lookup; the retained
        // one keeps hitting.
        let _ = cache.policy(&analyzer, "<p>we collect your contacts.</p>");
        let _ = cache.policy(&analyzer, "<p>we collect your location.</p>");
        let stats = cache.stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn different_texts_get_different_analyses() {
        let cache = ArtifactCache::new();
        let analyzer = PolicyAnalyzer::new();
        let a = cache.policy(&analyzer, "<p>we collect your location.</p>");
        let b = cache.policy(&analyzer, "<p>we collect your contacts.</p>");
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().entries, 2);
    }

    /// Satellite regression: `with_cap` under many concurrent writers at
    /// tiny caps. Every lookup must count exactly one hit or one miss,
    /// nothing may panic, and the resident map must respect the cap.
    #[test]
    fn with_cap_eviction_is_safe_under_concurrent_writers() {
        for cap in 1..=4usize {
            let cache = ArtifactCache::with_cap(cap);
            let analyzer = PolicyAnalyzer::new();
            let threads = 8;
            let per_thread = 24u64;
            let texts: Vec<String> = (0..6)
                .map(|i| format!("<p>we may collect your artifact number {i}.</p>"))
                .collect();
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let cache = &cache;
                    let analyzer = &analyzer;
                    let texts = &texts;
                    scope.spawn(move || {
                        for i in 0..per_thread {
                            let html = &texts[(t + i as usize) % texts.len()];
                            let analysis = cache.policy(analyzer, html);
                            assert!(!analysis.sentences.is_empty());
                        }
                    });
                }
            });
            let stats = cache.stats();
            let lookups = threads as u64 * per_thread;
            assert_eq!(
                stats.hits + stats.misses,
                lookups,
                "cap={cap}: every lookup counts exactly once"
            );
            assert!(stats.entries <= cap, "cap={cap}: resident entries within cap");
            // Six distinct texts: at least that many computes (capped-out
            // texts recompute), and at least one per distinct text.
            assert!(stats.misses >= texts.len() as u64, "cap={cap}");
        }
    }

    /// An in-memory tier for exercising the two-tier path without disk.
    #[derive(Debug, Default)]
    struct MemTier {
        records: RwLock<HashMap<(ppchecker_store::RecordKind, u64), Vec<u8>>>,
        saves: AtomicU64,
    }

    impl ArtifactTier for MemTier {
        fn load(&self, kind: ppchecker_store::RecordKind, key: u64) -> Option<Vec<u8>> {
            self.records.read().unwrap().get(&(kind, key)).cloned()
        }

        fn save(&self, kind: ppchecker_store::RecordKind, key: u64, payload: &[u8]) {
            self.saves.fetch_add(1, Ordering::Relaxed);
            self.records.write().unwrap().insert((kind, key), payload.to_vec());
        }
    }

    #[test]
    fn disk_tier_round_trips_and_counts_hits() {
        let tier = Arc::new(MemTier::default());
        let analyzer = PolicyAnalyzer::new();
        let html = "<p>we may collect your precise location.</p>";

        let warm_writer = ArtifactCache::new();
        warm_writer.attach_disk_tier(Arc::clone(&tier) as Arc<dyn ArtifactTier>, 7);
        let first = warm_writer.policy(&analyzer, html);
        assert_eq!(warm_writer.stats().misses, 1);
        assert_eq!(tier.saves.load(Ordering::Relaxed), 1, "fresh compute persisted");

        // A second cache (a new process, conceptually) warm-starts from
        // the tier: no compute, the lookup counts as a hit.
        let warm_reader = ArtifactCache::new();
        warm_reader.attach_disk_tier(Arc::clone(&tier) as Arc<dyn ArtifactTier>, 7);
        let replayed = warm_reader.policy(&analyzer, html);
        let stats = warm_reader.stats();
        assert_eq!(stats.misses, 0, "disk hit avoids the NLP pipeline");
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1, "disk hit promoted into memory");
        assert_eq!(replayed.sentences.len(), first.sentences.len());
        assert_eq!(tier.saves.load(Ordering::Relaxed), 1, "replays are not re-persisted");

        // A different fingerprint means a different key space: the
        // stored parse must not replay for a reconfigured analyzer.
        let reconfigured = ArtifactCache::new();
        reconfigured.attach_disk_tier(Arc::clone(&tier) as Arc<dyn ArtifactTier>, 8);
        let _ = reconfigured.policy(&analyzer, html);
        assert_eq!(reconfigured.stats().misses, 1, "fingerprint change invalidates");
    }

    /// A tier that always returns garbage: decode failure must read as a
    /// miss (recompute + overwrite), never an error.
    #[derive(Debug, Default)]
    struct GarbageTier;

    impl ArtifactTier for GarbageTier {
        fn load(&self, _kind: ppchecker_store::RecordKind, _key: u64) -> Option<Vec<u8>> {
            Some(vec![0xFF; 24])
        }

        fn save(&self, _kind: ppchecker_store::RecordKind, _key: u64, _payload: &[u8]) {}
    }

    #[test]
    fn corrupt_disk_record_reads_as_miss() {
        let cache = ArtifactCache::new();
        cache.attach_disk_tier(Arc::new(GarbageTier), 1);
        let analysis = cache.policy(&PolicyAnalyzer::new(), "<p>we collect your email.</p>");
        assert!(!analysis.sentences.is_empty());
        assert_eq!(cache.stats().misses, 1, "garbage bytes recompute cleanly");
    }
}
