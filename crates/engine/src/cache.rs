//! Content-addressed artifact cache.
//!
//! Policy texts repeat across a corpus — the 81 third-party lib policies
//! are checked against every app embedding them, template policies are
//! shared by whole app families, and re-runs see identical bytes. The
//! cache interns each policy's HTML and keys parsed [`PolicyAnalysis`]
//! results by the resulting [`Symbol`], so each distinct text is pushed
//! through the NLP pipeline exactly once per run regardless of worker
//! count, collisions are impossible by construction (the interner
//! compares bytes, not hashes), and repeat lookups probe a `u32`-keyed
//! map. The trade-off: each *distinct* policy text stays resident in the
//! interner for the life of the process — bounded by corpus text volume,
//! which the resident analyses already dominate (see DESIGN.md §9).

use ppchecker_nlp::{intern, Symbol};
use ppchecker_policy::{PolicyAnalysis, PolicyAnalyzer};
use ppchecker_static::TaintSummaryCache;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Hit/miss counters of one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compute (== number of distinct texts analyzed).
    pub misses: u64,
    /// Entries resident at snapshot time.
    pub entries: usize,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 when empty.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Upper bound on resident policy analyses. Past this the cache stops
/// admitting new entries (hits still serve, misses still compute) — the
/// same stop-admitting idiom as the ESA vector cache — so a week-long
/// daemon fed an unbounded stream of distinct policies holds at most
/// this many parsed analyses. 32k entries ≈ hundreds of MB worst case;
/// batch runs over the paper corpus use a few hundred.
pub const POLICY_CACHE_CAP: usize = 32_768;

/// Thread-safe memo of parsed policy analyses, shared by all workers of
/// a batch run.
#[derive(Debug)]
pub struct ArtifactCache {
    policies: RwLock<HashMap<Symbol, Arc<PolicyAnalysis>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    cap: usize,
    /// Cross-app library taint-summary store, keyed by lib content hash
    /// (see `ppchecker_static::summary`). Shared with the checker via
    /// `Arc` so the taint kernel inside workers and the engine's metrics
    /// observe the same counters.
    taint_summaries: Arc<TaintSummaryCache>,
}

impl Default for ArtifactCache {
    fn default() -> Self {
        ArtifactCache {
            policies: RwLock::default(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            cap: POLICY_CACHE_CAP,
            taint_summaries: Arc::default(),
        }
    }
}

impl ArtifactCache {
    /// An empty cache.
    pub fn new() -> Self {
        ArtifactCache::default()
    }

    /// An empty cache with a custom entry cap (tests; `0` means
    /// admit nothing).
    pub fn with_cap(cap: usize) -> Self {
        ArtifactCache { cap, ..ArtifactCache::default() }
    }

    /// The entry cap.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Returns the analysis of `html`, computing it with `analyzer` on
    /// first sight of the text.
    pub fn policy(&self, analyzer: &PolicyAnalyzer, html: &str) -> Arc<PolicyAnalysis> {
        let _span = ppchecker_obs::span!("engine.cache_probe");
        let key = intern(html);
        if let Some(hit) = self.policies.read().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        // Analyze outside the write lock; a concurrent duplicate costs
        // one redundant parse but never blocks other texts. First insert
        // wins so every consumer shares one allocation, and only the
        // winner counts a miss — the loser's lookup resolves from the
        // cache, so `misses` always equals the number of distinct texts.
        let fresh = Arc::new(analyzer.analyze_html(html));
        let mut map = self.policies.write().expect("cache lock");
        if let Some(hit) = map.get(&key) {
            let out = Arc::clone(hit);
            drop(map);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return out;
        }
        // Cap-bounded admission (the ESA vector-cache idiom): at capacity
        // the fresh analysis is still returned, just not retained, so a
        // resident process can't accrete unbounded parsed analyses.
        if map.len() < self.cap {
            map.insert(key, Arc::clone(&fresh));
        }
        drop(map);
        self.misses.fetch_add(1, Ordering::Relaxed);
        fresh
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.policies.read().expect("cache lock").len(),
        }
    }

    /// The shared library taint-summary cache (to clone into a checker).
    pub fn taint_summaries(&self) -> &Arc<TaintSummaryCache> {
        &self.taint_summaries
    }

    /// Snapshot of the taint-summary cache counters.
    pub fn taint_summary_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.taint_summaries.hits(),
            misses: self.taint_summaries.misses(),
            entries: self.taint_summaries.entries(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_texts_distinct_keys() {
        let a = intern("we collect location");
        let b = intern("we collect location!");
        let c = intern("we collect locatioN");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, intern("we collect location"));
    }

    #[test]
    fn repeated_text_analyzed_once() {
        let cache = ArtifactCache::new();
        let analyzer = PolicyAnalyzer::new();
        let html = "<p>we may collect your location.</p>";
        let first = cache.policy(&analyzer, html);
        let again = cache.policy(&analyzer, html);
        assert!(Arc::ptr_eq(&first, &again), "same allocation shared");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cap_stops_admission_but_not_results() {
        let cache = ArtifactCache::with_cap(1);
        let analyzer = PolicyAnalyzer::new();
        let first = cache.policy(&analyzer, "<p>we collect your location.</p>");
        let second = cache.policy(&analyzer, "<p>we collect your contacts.</p>");
        assert!(!first.sentences.is_empty());
        assert!(!second.sentences.is_empty());
        let stats = cache.stats();
        assert_eq!(stats.entries, 1, "second text not retained past the cap");
        assert_eq!(stats.misses, 2);
        // The capped-out text recomputes on every lookup; the retained
        // one keeps hitting.
        let _ = cache.policy(&analyzer, "<p>we collect your contacts.</p>");
        let _ = cache.policy(&analyzer, "<p>we collect your location.</p>");
        let stats = cache.stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn different_texts_get_different_analyses() {
        let cache = ArtifactCache::new();
        let analyzer = PolicyAnalyzer::new();
        let a = cache.policy(&analyzer, "<p>we collect your location.</p>");
        let b = cache.policy(&analyzer, "<p>we collect your contacts.</p>");
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().entries, 2);
    }
}
