//! Per-run metrics: stage wall time, cache effectiveness, throughput.
//!
//! Counts in the summary are deterministic for a given corpus; durations
//! measure the actual run. The summary deliberately separates the two so
//! determinism tests can compare aggregate *results* while dashboards
//! still see real timings.

use crate::cache::CacheStats;
use ppchecker_core::{DetectorId, StageTimings};
use ppchecker_nlp::InternerStats;
use ppchecker_obs::HistogramSnapshot;
use ppchecker_store::{RecordKind, Store, StoreStats};
use std::fmt;
use std::time::Duration;

/// Persistent-store counters over one window (a run, or since process
/// start), broken out per record kind, plus the number of apps whose
/// full report replayed from the store — the incremental-reanalysis
/// headline number.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreSummary {
    /// Parsed-policy records (keyed by policy HTML × analyzer config).
    pub policies: StoreStats,
    /// Library taint-summary records (keyed by lib content hash).
    pub lib_summaries: StoreStats,
    /// Full per-app report records (keyed by app inputs × checker
    /// config).
    pub reports: StoreStats,
    /// Apps whose stored report replayed — the entire pipeline skipped.
    pub apps_skipped: u64,
}

impl StoreSummary {
    /// Cumulative counters of `store` since it was opened, with
    /// `apps_skipped` supplied by the engine (the store itself cannot
    /// tell a report probe from a report replay).
    pub fn cumulative(store: &Store, apps_skipped: u64) -> Self {
        StoreSummary {
            policies: store.stats(RecordKind::Policy),
            lib_summaries: store.stats(RecordKind::LibSummary),
            reports: store.stats(RecordKind::Report),
            apps_skipped,
        }
    }

    /// The change between two cumulative snapshots.
    pub fn delta_since(&self, earlier: &StoreSummary) -> StoreSummary {
        StoreSummary {
            policies: self.policies.delta_since(&earlier.policies),
            lib_summaries: self.lib_summaries.delta_since(&earlier.lib_summaries),
            reports: self.reports.delta_since(&earlier.reports),
            apps_skipped: self.apps_skipped - earlier.apps_skipped,
        }
    }

    /// Total corrupt records encountered across all kinds.
    pub fn corrupt(&self) -> u64 {
        self.policies.corrupt + self.lib_summaries.corrupt + self.reports.corrupt
    }
}

impl fmt::Display for StoreSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "store: {} apps skipped; reports {}h/{}m/{}w, policies {}h/{}m/{}w, \
             lib summaries {}h/{}m/{}w; {} corrupt",
            self.apps_skipped,
            self.reports.hits,
            self.reports.misses,
            self.reports.writes,
            self.policies.hits,
            self.policies.misses,
            self.policies.writes,
            self.lib_summaries.hits,
            self.lib_summaries.misses,
            self.lib_summaries.writes,
            self.corrupt(),
        )
    }
}

/// Distribution of one span's durations over a batch run, read off the
/// obs histogram delta (quantiles are log2-bucket upper bounds clamped
/// to the observed max — see `ppchecker-obs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageStats {
    /// The span name (`check.policy`, `nlp.depparse`, …).
    pub name: &'static str,
    /// Spans recorded during the run.
    pub count: u64,
    /// Median duration.
    pub p50: Duration,
    /// 90th-percentile duration.
    pub p90: Duration,
    /// 99th-percentile duration.
    pub p99: Duration,
    /// Longest single span.
    pub max: Duration,
    /// Sum across all spans.
    pub total: Duration,
}

impl StageStats {
    /// Reads the quantities off a histogram delta.
    pub fn from_snapshot(name: &'static str, snap: &HistogramSnapshot) -> Self {
        StageStats {
            name,
            count: snap.count,
            p50: snap.p50(),
            p90: snap.p90(),
            p99: snap.p99(),
            max: snap.max_duration(),
            total: snap.total(),
        }
    }
}

/// Cumulative cache and occupancy counters since process start, as
/// returned by [`Engine::metrics_snapshot`](crate::Engine::metrics_snapshot).
/// Running totals rather than per-run deltas: a resident service scrapes
/// these on demand (e.g. for a `/metrics` endpoint) and differences two
/// scrapes itself when it wants a window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineSnapshot {
    /// Third-party lib policies registered on the engine's checker.
    pub lib_policies: usize,
    /// Policy artifact cache totals.
    pub policy_cache: CacheStats,
    /// ESA interpretation-vector cache totals (process-wide).
    pub esa_cache: CacheStats,
    /// ESA symbol-pair verdict-memo totals.
    pub esa_pair_memo: CacheStats,
    /// Threshold comparisons answered by the norm bound alone.
    pub esa_pruned: u64,
    /// Cross-app library taint-summary cache totals.
    pub taint_summary_cache: CacheStats,
    /// Global interner occupancy.
    pub interner: InternerStats,
    /// Persistent-store totals since the store was opened; `None` when
    /// the engine runs without a store.
    pub store: Option<StoreSummary>,
}

/// Everything a batch run reports about itself.
#[derive(Debug, Clone, Default)]
pub struct MetricsSummary {
    /// Worker count the run was scheduled with.
    pub jobs: usize,
    /// Apps submitted.
    pub apps: usize,
    /// Apps that produced an error record instead of a report.
    pub errors: usize,
    /// Third-party lib policies registered (each analyzed exactly once,
    /// at engine construction).
    pub lib_policies: usize,
    /// End-to-end wall time of the run.
    pub wall_time: Duration,
    /// Sum of per-stage wall time across all workers. With `jobs > 1`
    /// this exceeds `wall_time`; the ratio is the effective parallelism.
    pub stage_totals: StageTimings,
    /// Per-span duration distributions (p50/p90/p99/max), read off the
    /// obs histogram deltas over the run and merged across worker
    /// shards. Empty when `ppchecker_obs` metrics were disabled.
    pub stage_quantiles: Vec<StageStats>,
    /// Policy artifact cache counters (app policies only; lib policies
    /// enter the cache during construction).
    pub policy_cache: CacheStats,
    /// ESA interpretation-vector cache counters, as a delta over the run
    /// (the interpreter is process-wide).
    pub esa_cache: CacheStats,
    /// ESA symbol-pair verdict-memo counters, as a delta over the run.
    pub esa_pair_memo: CacheStats,
    /// ESA threshold comparisons answered by the norm bound alone (no dot
    /// product), as a delta over the run.
    pub esa_pruned: u64,
    /// Cross-app library taint-summary cache counters, as a delta over
    /// the run (`misses` counts distinct embedded lib contents, `hits`
    /// apps that reused another app's lib summaries).
    pub taint_summary_cache: CacheStats,
    /// Global interner occupancy at the end of the run (process-wide:
    /// includes the static pre-seed plus everything interned so far).
    pub interner: InternerStats,
    /// Persistent-store counters as a delta over the run — hit/miss/write
    /// per record kind plus apps whose report replayed wholesale. `None`
    /// when the engine runs without a store.
    pub store: Option<StoreSummary>,
    /// Finding totals per detector, indexed by [`DetectorId::rank`] in
    /// [`DetectorId::ALL`] order. Deterministic for a given corpus and
    /// registry.
    pub detector_findings: [u64; DetectorId::COUNT],
}

impl MetricsSummary {
    /// Apps per second of wall time.
    pub fn throughput(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.apps as f64 / secs
        }
    }

    /// Effective parallelism: total stage time over wall time.
    pub fn effective_parallelism(&self) -> f64 {
        let wall = self.wall_time.as_secs_f64();
        if wall == 0.0 {
            0.0
        } else {
            self.stage_totals.total().as_secs_f64() / wall
        }
    }
}

impl fmt::Display for MetricsSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "batch: {} apps ({} errors), jobs={}, wall {:?}, {:.1} apps/sec, parallelism {:.2}x",
            self.apps,
            self.errors,
            self.jobs,
            self.wall_time,
            self.throughput(),
            self.effective_parallelism(),
        )?;
        writeln!(
            f,
            "stages: policy {:?}, description {:?}, static {:?}, matching {:?}",
            self.stage_totals.policy,
            self.stage_totals.description,
            self.stage_totals.static_analysis,
            self.stage_totals.matching,
        )?;
        if self.detector_findings.iter().any(|&n| n > 0) {
            write!(f, "detectors:")?;
            for &id in DetectorId::ALL {
                let n = self.detector_findings[id.rank()];
                if n > 0 {
                    write!(f, " {id}={n}")?;
                }
            }
            writeln!(f)?;
        }
        if !self.stage_quantiles.is_empty() {
            writeln!(
                f,
                "{:<22} {:>8} {:>9} {:>9} {:>9} {:>9}",
                "span", "count", "p50", "p90", "p99", "max"
            )?;
            for s in &self.stage_quantiles {
                writeln!(
                    f,
                    "{:<22} {:>8} {:>9} {:>9} {:>9} {:>9}",
                    s.name,
                    s.count,
                    format!("{:.1?}", s.p50),
                    format!("{:.1?}", s.p90),
                    format!("{:.1?}", s.p99),
                    format!("{:.1?}", s.max),
                )?;
            }
        }
        writeln!(
            f,
            "policy cache: {} hits / {} misses ({:.1}% hit rate, {} entries); lib policies analyzed: {}",
            self.policy_cache.hits,
            self.policy_cache.misses,
            self.policy_cache.hit_rate() * 100.0,
            self.policy_cache.entries,
            self.lib_policies,
        )?;
        writeln!(
            f,
            "esa cache: {} hits / {} misses ({:.1}% hit rate)",
            self.esa_cache.hits,
            self.esa_cache.misses,
            self.esa_cache.hit_rate() * 100.0,
        )?;
        writeln!(
            f,
            "esa kernel: pair memo {} hits / {} misses ({:.1}% hit rate, {} entries); {} comparisons pruned",
            self.esa_pair_memo.hits,
            self.esa_pair_memo.misses,
            self.esa_pair_memo.hit_rate() * 100.0,
            self.esa_pair_memo.entries,
            self.esa_pruned,
        )?;
        writeln!(
            f,
            "taint summaries: {} hits / {} misses ({:.1}% hit rate, {} libs cached)",
            self.taint_summary_cache.hits,
            self.taint_summary_cache.misses,
            self.taint_summary_cache.hit_rate() * 100.0,
            self.taint_summary_cache.entries,
        )?;
        if let Some(store) = &self.store {
            writeln!(
                f,
                "interner: {} symbols ({} preseeded, {} bytes)",
                self.interner.symbols, self.interner.preseeded, self.interner.bytes,
            )?;
            write!(f, "{store}")
        } else {
            write!(
                f,
                "interner: {} symbols ({} preseeded, {} bytes)",
                self.interner.symbols, self.interner.preseeded, self.interner.bytes,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_and_parallelism() {
        let m = MetricsSummary {
            jobs: 4,
            apps: 100,
            wall_time: Duration::from_secs(10),
            stage_totals: StageTimings {
                policy: Duration::from_secs(12),
                description: Duration::from_secs(8),
                static_analysis: Duration::from_secs(10),
                matching: Duration::from_secs(6),
            },
            ..MetricsSummary::default()
        };
        assert!((m.throughput() - 10.0).abs() < 1e-9);
        assert!((m.effective_parallelism() - 3.6).abs() < 1e-9);
    }

    #[test]
    fn zero_wall_time_is_safe() {
        let m = MetricsSummary::default();
        assert_eq!(m.throughput(), 0.0);
        assert_eq!(m.effective_parallelism(), 0.0);
    }

    #[test]
    fn display_mentions_cache_and_stages() {
        let m = MetricsSummary::default();
        let text = m.to_string();
        assert!(text.contains("policy cache"));
        assert!(text.contains("stages:"));
        assert!(text.contains("interner:"));
        assert!(text.contains("pair memo"));
        assert!(text.contains("pruned"));
        assert!(text.contains("taint summaries"));
        // No quantile table without recorded spans.
        assert!(!text.contains("p99"));
    }

    #[test]
    fn display_includes_store_line_only_when_attached() {
        let m = MetricsSummary {
            store: Some(StoreSummary {
                apps_skipped: 95,
                reports: StoreStats { hits: 95, misses: 5, writes: 5, corrupt: 0 },
                ..StoreSummary::default()
            }),
            ..MetricsSummary::default()
        };
        let text = m.to_string();
        assert!(text.contains("store: 95 apps skipped"));
        assert!(text.contains("reports 95h/5m/5w"));
        assert!(!MetricsSummary::default().to_string().contains("store:"));
    }

    #[test]
    fn store_summary_delta_subtracts_per_kind() {
        let earlier = StoreSummary {
            policies: StoreStats { hits: 1, misses: 2, writes: 2, corrupt: 0 },
            lib_summaries: StoreStats::default(),
            reports: StoreStats { hits: 0, misses: 4, writes: 4, corrupt: 1 },
            apps_skipped: 0,
        };
        let later = StoreSummary {
            policies: StoreStats { hits: 5, misses: 2, writes: 2, corrupt: 0 },
            lib_summaries: StoreStats { hits: 3, misses: 0, writes: 0, corrupt: 0 },
            reports: StoreStats { hits: 4, misses: 4, writes: 4, corrupt: 1 },
            apps_skipped: 4,
        };
        let delta = later.delta_since(&earlier);
        assert_eq!(delta.policies.hits, 4);
        assert_eq!(delta.lib_summaries.hits, 3);
        assert_eq!(delta.reports.hits, 4);
        assert_eq!(delta.apps_skipped, 4);
        assert_eq!(delta.corrupt(), 0);
    }

    #[test]
    fn display_renders_the_quantile_table_when_present() {
        let hist = ppchecker_obs::histogram("metrics.test.stage");
        hist.record(Duration::from_micros(100));
        hist.record(Duration::from_micros(900));
        let snap = hist.snapshot();
        let m = MetricsSummary {
            stage_quantiles: vec![StageStats::from_snapshot("metrics.test.stage", &snap)],
            ..MetricsSummary::default()
        };
        let text = m.to_string();
        assert!(text.contains("p50"));
        assert!(text.contains("p99"));
        assert!(text.contains("metrics.test.stage"));
        let row = m.stage_quantiles[0];
        assert_eq!(row.count, 2);
        assert!(row.p50 <= row.p99);
        assert!(row.p99 <= row.max.max(row.p99));
    }
}
