//! Batch results: per-app records in submission order plus deterministic
//! aggregation.

use crate::metrics::MetricsSummary;
use ppchecker_core::{DetectorId, Error, Report};
use std::fmt;

/// What one app produced: a full report, or an error record. A poisoned
/// app (corrupt dex, worker panic) never kills the run — it becomes an
/// `Err` record and the remaining apps proceed.
#[derive(Debug, Clone)]
pub enum AppOutcome {
    /// The pipeline completed.
    Report(Report),
    /// The pipeline failed; the structured error says where and why
    /// (`error.stage()` names the failing stage).
    Error(Error),
}

/// One app's result, tagged with its submission index.
#[derive(Debug, Clone)]
pub struct AppRecord {
    /// Position in the submitted stream (0-based).
    pub index: usize,
    /// Package name.
    pub package: String,
    /// Report or error.
    pub outcome: AppOutcome,
}

impl AppRecord {
    /// The report, if the app completed.
    pub fn report(&self) -> Option<&Report> {
        match &self.outcome {
            AppOutcome::Report(r) => Some(r),
            AppOutcome::Error(_) => None,
        }
    }

    /// The structured error, if the app failed.
    pub fn error(&self) -> Option<&Error> {
        match &self.outcome {
            AppOutcome::Report(_) => None,
            AppOutcome::Error(e) => Some(e),
        }
    }
}

/// Deterministic aggregate of a batch: pure counts over the records,
/// independent of worker count and completion order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AggregateSummary {
    /// Apps submitted.
    pub apps: usize,
    /// Error records.
    pub errors: usize,
    /// Apps embedding at least one known third-party lib.
    pub with_libs: usize,
    /// Apps with an incomplete policy.
    pub incomplete: usize,
    /// Apps with an incorrect policy.
    pub incorrect: usize,
    /// Apps with a policy inconsistent with an embedded lib's.
    pub inconsistent: usize,
    /// Apps with at least one problem of any kind.
    pub problem_apps: usize,
    /// Total missed-information records.
    pub missed_records: usize,
    /// Total incorrect findings.
    pub incorrect_findings: usize,
    /// Total app-vs-lib inconsistencies.
    pub inconsistencies: usize,
    /// Per-detector finding totals, indexed by [`DetectorId::rank`] in
    /// [`DetectorId::ALL`] order (fixed-size so the summary stays
    /// `Copy`). Paper detectors mirror the classic totals above; the
    /// successor-literature slots are zero unless those detectors ran.
    pub detector_findings: [u64; DetectorId::COUNT],
}

impl AggregateSummary {
    /// Folds one record into the summary. [`BatchReport::aggregate`] is
    /// this fold over a materialized record vector; a streaming consumer
    /// ([`crate::Engine::run_streamed`]) applies it record by record so
    /// the aggregate never requires the records to coexist in memory.
    pub fn accumulate(&mut self, record: &AppRecord) {
        self.apps += 1;
        match &record.outcome {
            AppOutcome::Error(_) => self.errors += 1,
            AppOutcome::Report(r) => {
                if !r.libs.is_empty() {
                    self.with_libs += 1;
                }
                if r.is_incomplete() {
                    self.incomplete += 1;
                }
                if r.is_incorrect() {
                    self.incorrect += 1;
                }
                if r.is_inconsistent() {
                    self.inconsistent += 1;
                }
                if r.has_any_problem() {
                    self.problem_apps += 1;
                }
                self.missed_records += r.missed.len();
                self.incorrect_findings += r.incorrect.len();
                self.inconsistencies += r.inconsistencies.len();
                for &id in DetectorId::ALL {
                    self.detector_findings[id.rank()] += r.detector_findings(id) as u64;
                }
            }
        }
    }
}

impl fmt::Display for AggregateSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} apps ({} errors): {} with libs, {} incomplete, {} incorrect, {} inconsistent, \
             {} with >=1 problem; {} missed records, {} incorrect findings, {} inconsistencies",
            self.apps,
            self.errors,
            self.with_libs,
            self.incomplete,
            self.incorrect,
            self.inconsistent,
            self.problem_apps,
            self.missed_records,
            self.incorrect_findings,
            self.inconsistencies,
        )?;
        // Successor-literature totals only when those detectors fired, so
        // classic runs render the classic line unchanged.
        for &id in DetectorId::ALL {
            let n = self.detector_findings[id.rank()];
            if n > 0 && !DetectorId::PAPER.contains(&id) {
                write!(f, ", {n} {id}")?;
            }
        }
        Ok(())
    }
}

/// The full result of one batch run.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-app records, reassembled in submission order: `records[i]` is
    /// the i-th submitted app whatever worker finished it, so `jobs=1`
    /// and `jobs=16` produce identical record sequences.
    pub records: Vec<AppRecord>,
    /// Run metrics (timings are measurements, counts are deterministic).
    pub metrics: MetricsSummary,
}

impl BatchReport {
    /// Aggregates the records into deterministic counts.
    pub fn aggregate(&self) -> AggregateSummary {
        let mut agg = AggregateSummary::default();
        for record in &self.records {
            agg.accumulate(record);
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(index: usize, outcome: AppOutcome) -> AppRecord {
        AppRecord { index, package: format!("com.app{index}"), outcome }
    }

    #[test]
    fn aggregate_counts_errors_and_reports() {
        let ok = Report { package: "com.app0".into(), ..Report::default() };
        let batch = BatchReport {
            records: vec![
                record(0, AppOutcome::Report(ok)),
                record(1, AppOutcome::Error(Error::input("bad dex"))),
            ],
            metrics: MetricsSummary::default(),
        };
        let agg = batch.aggregate();
        assert_eq!(agg.apps, 2);
        assert_eq!(agg.errors, 1);
        assert_eq!(agg.problem_apps, 0);
    }

    #[test]
    fn accessors_distinguish_outcomes() {
        let r = record(0, AppOutcome::Error(Error::worker("boom")));
        assert!(r.report().is_none());
        let err = r.error().unwrap();
        assert_eq!(err.stage(), ppchecker_core::Stage::Batch);
        assert!(err.to_string().contains("boom"));
    }
}
