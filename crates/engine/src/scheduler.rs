//! The sharded work scheduler, in its two faces.
//!
//! PR 1 buried the scheduler inside [`Engine::run`]: a bounded job
//! channel feeding a worker pool that steals from one shared receiver.
//! The serve daemon needs the same machinery with a different lifetime —
//! workers that outlive any one call and admit work one request at a
//! time — so the topology lives here, shared by both call shapes:
//!
//! - `run_scoped`: the batch face. Borrows the processing closure,
//!   spawns scoped workers, feeds a bounded channel under backpressure,
//!   and returns every result. This is what [`Engine::run`] uses.
//! - [`WorkerPool`]: the resident face. `'static` workers pull boxed
//!   jobs for the life of the process; callers must hold an
//!   [`AdmitTicket`] (bounded capacity — the admission-control layer of
//!   the serve daemon) before submitting. Full capacity is an
//!   *immediate, non-blocking* rejection through [`WorkerPool::try_admit`],
//!   which is what turns into an HTTP 429; bulk transports use
//!   [`WorkerPool::admit_blocking`] and get classic backpressure instead.
//!
//! Both faces share the single-consumer-lock dequeue idiom: jobs flow
//! through one `mpsc` channel whose receiver sits behind a mutex held
//! only for the dequeue itself, so distribution order is FIFO and a slow
//! job never blocks the queue behind a fast worker.
//!
//! [`Engine::run`]: crate::Engine::run

use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

/// Runs `process` over every item of `items` on `jobs` workers with a
/// bounded feed channel of `depth`, returning `(index, result)` pairs in
/// completion order. `jobs` must be ≥ 2 (the serial path belongs to the
/// caller, which can run inline without any channel).
pub(crate) fn run_scoped<T, R, F>(
    items: impl IntoIterator<Item = T>,
    jobs: usize,
    depth: usize,
    process: F,
) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let (job_tx, job_rx) = mpsc::sync_channel::<(usize, T)>(depth.max(1));
    let job_rx = Arc::new(Mutex::new(job_rx));
    let (result_tx, result_rx) = mpsc::channel();

    thread::scope(|scope| {
        for _ in 0..jobs {
            let job_rx = Arc::clone(&job_rx);
            let result_tx = result_tx.clone();
            let process = &process;
            scope.spawn(move || loop {
                // Hold the receiver lock only for the dequeue itself.
                let wait = ppchecker_obs::span!("engine.queue_wait");
                let job = job_rx.lock().expect("job queue lock").recv();
                drop(wait);
                match job {
                    Ok((index, item)) => {
                        if result_tx.send(process(index, item)).is_err() {
                            break; // collector gone; shut down
                        }
                    }
                    Err(_) => break, // producer done and queue drained
                }
            });
        }
        drop(result_tx);

        // Produce under backpressure, then collect. The result channel
        // is unbounded so workers never block sending while this
        // thread is still feeding.
        for job in items.into_iter().enumerate() {
            if job_tx.send(job).is_err() {
                break; // all workers died; stop feeding
            }
        }
        drop(job_tx);

        result_rx.iter().collect()
    })
}

/// The streaming face of `run_scoped`: same worker topology, but results
/// are handed to `emit` in submission order *while the run is still in
/// flight*, and every channel is bounded. Nothing in this function holds
/// more than `jobs + depth + result-bound` items at once, so memory stays
/// constant no matter how long the input stream is — this is what lets a
/// 100k–1M-app batch run without materializing either the corpus or the
/// result vector.
///
/// The producer moves to a scoped thread (hence the `I::IntoIter: Send`
/// bound) so the calling thread can drain results concurrently; workers
/// push into a *bounded* result channel, so a slow `emit` back-pressures
/// the workers instead of buffering the whole run. Out-of-order
/// completions park in a reorder buffer whose size is capped by the
/// in-flight bound.
pub(crate) fn run_scoped_streamed<I, R, F, S>(
    items: I,
    jobs: usize,
    depth: usize,
    process: F,
    emit: &mut S,
) where
    I: IntoIterator,
    I::Item: Send,
    I::IntoIter: Send,
    R: Send,
    F: Fn(usize, I::Item) -> R + Sync,
    S: FnMut(usize, R),
{
    let depth = depth.max(1);
    let (job_tx, job_rx) = mpsc::sync_channel::<(usize, I::Item)>(depth);
    let job_rx = Arc::new(Mutex::new(job_rx));
    let (result_tx, result_rx) = mpsc::sync_channel::<(usize, R)>(jobs + depth);

    thread::scope(|scope| {
        for _ in 0..jobs {
            let job_rx = Arc::clone(&job_rx);
            let result_tx = result_tx.clone();
            let process = &process;
            scope.spawn(move || loop {
                let wait = ppchecker_obs::span!("engine.queue_wait");
                let job = job_rx.lock().expect("job queue lock").recv();
                drop(wait);
                match job {
                    Ok((index, item)) => {
                        if result_tx.send((index, process(index, item))).is_err() {
                            break; // collector gone; shut down
                        }
                    }
                    Err(_) => break, // producer done and queue drained
                }
            });
        }
        drop(result_tx);

        let iter = items.into_iter();
        scope.spawn(move || {
            for job in iter.enumerate() {
                if job_tx.send(job).is_err() {
                    break; // all workers died; stop feeding
                }
            }
            // job_tx drops here; workers see the disconnect once drained.
        });

        // In-order reassembly. `pending` can only hold results whose
        // predecessors are still in flight, so it is bounded by the same
        // in-flight cap as the channels.
        let mut next = 0usize;
        let mut pending: std::collections::BTreeMap<usize, R> = std::collections::BTreeMap::new();
        for (index, result) in result_rx.iter() {
            pending.insert(index, result);
            while let Some(result) = pending.remove(&next) {
                emit(next, result);
                next += 1;
            }
        }
        debug_assert!(pending.is_empty(), "stream ended with a gap in indices");
    });
}

/// A unit of resident work.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why an admission attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// Every queue slot is taken; retry later or shed the request.
    Overloaded,
    /// The pool is draining and admits nothing new.
    Draining,
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::Overloaded => f.write_str("overloaded"),
            AdmitError::Draining => f.write_str("draining"),
        }
    }
}

impl std::error::Error for AdmitError {}

#[derive(Debug, Default)]
struct Occupancy {
    inflight: usize,
    draining: bool,
}

/// Capacity accounting shared between the pool and outstanding tickets.
#[derive(Debug)]
struct Gate {
    occupancy: Mutex<Occupancy>,
    freed: Condvar,
    capacity: usize,
}

impl Gate {
    fn acquire(&self, slots: usize, block: bool) -> Result<(), AdmitError> {
        let mut occ = self.occupancy.lock().expect("gate lock");
        loop {
            if occ.draining {
                return Err(AdmitError::Draining);
            }
            if occ.inflight + slots <= self.capacity {
                occ.inflight += slots;
                return Ok(());
            }
            if !block {
                return Err(AdmitError::Overloaded);
            }
            occ = self.freed.wait(occ).expect("gate lock");
        }
    }

    fn release(&self, slots: usize) {
        let mut occ = self.occupancy.lock().expect("gate lock");
        occ.inflight -= slots;
        drop(occ);
        self.freed.notify_all();
    }
}

/// An admitted capacity reservation: proof that the pool has room for
/// `slots` more jobs. Submitting consumes the ticket slot by slot; slots
/// never submitted are released when the ticket drops, and submitted
/// slots are released when their job *finishes* — capacity tracks work
/// in flight, not work enqueued.
#[derive(Debug)]
pub struct AdmitTicket {
    gate: Arc<Gate>,
    remaining: usize,
}

impl AdmitTicket {
    /// Slots still available on this ticket.
    pub fn remaining(&self) -> usize {
        self.remaining
    }
}

impl Drop for AdmitTicket {
    fn drop(&mut self) {
        if self.remaining > 0 {
            self.gate.release(self.remaining);
        }
    }
}

/// Queue-occupancy counters for a metrics endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads serving the queue.
    pub workers: usize,
    /// Total admission capacity (in-flight job bound).
    pub capacity: usize,
    /// Jobs admitted and not yet finished.
    pub inflight: usize,
    /// Whether the pool has begun draining.
    pub draining: bool,
}

/// The resident worker pool: the engine scheduler's long-lived face,
/// used by the serve daemon for per-request admission control.
///
/// ```
/// use ppchecker_engine::WorkerPool;
/// use std::sync::mpsc;
///
/// let pool = WorkerPool::new(2, 8);
/// let (tx, rx) = mpsc::channel();
/// let mut ticket = pool.try_admit(1).unwrap();
/// pool.submit(&mut ticket, move || tx.send(21 * 2).unwrap());
/// assert_eq!(rx.recv().unwrap(), 42);
/// pool.drain();
/// ```
#[derive(Debug)]
pub struct WorkerPool {
    job_tx: Option<mpsc::Sender<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
    gate: Arc<Gate>,
}

impl WorkerPool {
    /// Spawns `workers` resident threads with room for
    /// `workers + queue_depth` admitted jobs (running + queued).
    pub fn new(workers: usize, queue_depth: usize) -> Self {
        let workers = workers.max(1);
        let capacity = workers + queue_depth.max(1);
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let handles = (0..workers)
            .map(|i| {
                let job_rx = Arc::clone(&job_rx);
                thread::Builder::new()
                    .name(format!("ppchecker-worker-{i}"))
                    .spawn(move || loop {
                        let wait = ppchecker_obs::span!("serve.queue_wait");
                        let job = job_rx.lock().expect("job queue lock").recv();
                        drop(wait);
                        match job {
                            // A panicking job must not kill its resident
                            // worker (the batch face gets the same
                            // isolation from `Engine::process_one`). The
                            // capacity slot still releases: the wrapper's
                            // guard drops during the unwind.
                            Ok(job) => {
                                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                            }
                            Err(_) => break, // pool dropped; queue drained
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            job_tx: Some(job_tx),
            workers: handles,
            gate: Arc::new(Gate {
                occupancy: Mutex::new(Occupancy::default()),
                freed: Condvar::new(),
                capacity,
            }),
        }
    }

    /// Reserves `slots` queue slots without blocking.
    ///
    /// # Errors
    ///
    /// [`AdmitError::Overloaded`] when the reservation does not fit, or
    /// [`AdmitError::Draining`] once [`WorkerPool::start_drain`] ran.
    pub fn try_admit(&self, slots: usize) -> Result<AdmitTicket, AdmitError> {
        self.gate.acquire(slots, false)?;
        Ok(AdmitTicket { gate: Arc::clone(&self.gate), remaining: slots })
    }

    /// Reserves `slots` queue slots, waiting for capacity (backpressure
    /// for bulk transports).
    ///
    /// # Errors
    ///
    /// [`AdmitError::Draining`] once [`WorkerPool::start_drain`] ran.
    pub fn admit_blocking(&self, slots: usize) -> Result<AdmitTicket, AdmitError> {
        self.gate.acquire(slots, true)?;
        Ok(AdmitTicket { gate: Arc::clone(&self.gate), remaining: slots })
    }

    /// Submits one job against a slot of `ticket`. The slot is released
    /// when the job finishes (even if it panics).
    ///
    /// # Panics
    ///
    /// Panics when the ticket has no remaining slots — a ticket is a
    /// counted reservation, not a blanket permission.
    pub fn submit(&self, ticket: &mut AdmitTicket, job: impl FnOnce() + Send + 'static) {
        assert!(ticket.remaining > 0, "submit without an admitted slot");
        ticket.remaining -= 1;
        let gate = Arc::clone(&self.gate);
        let wrapped: Job = Box::new(move || {
            // Release on every exit path: a panicking job must not leak
            // its capacity slot or the pool wedges at full queue.
            struct Release(Arc<Gate>);
            impl Drop for Release {
                fn drop(&mut self) {
                    self.0.release(1);
                }
            }
            let _release = Release(gate);
            job();
        });
        self.job_tx.as_ref().expect("pool not drained").send(wrapped).expect("workers alive");
    }

    /// Marks the pool as draining: every subsequent admission fails with
    /// [`AdmitError::Draining`] while already-admitted jobs keep running.
    pub fn start_drain(&self) {
        self.gate.occupancy.lock().expect("gate lock").draining = true;
        self.gate.freed.notify_all();
    }

    /// Waits until every admitted job has finished. Does not by itself
    /// stop new admissions — call [`WorkerPool::start_drain`] first for a
    /// graceful shutdown.
    pub fn wait_idle(&self) {
        let mut occ = self.gate.occupancy.lock().expect("gate lock");
        while occ.inflight > 0 {
            occ = self.gate.freed.wait(occ).expect("gate lock");
        }
    }

    /// Graceful shutdown: stop admissions, finish in-flight jobs, join
    /// the workers.
    pub fn drain(mut self) {
        self.start_drain();
        self.wait_idle();
        drop(self.job_tx.take()); // workers see Err(disconnect) and exit
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }

    /// Occupancy snapshot.
    pub fn stats(&self) -> PoolStats {
        let occ = self.gate.occupancy.lock().expect("gate lock");
        PoolStats {
            workers: self.workers.len(),
            capacity: self.gate.capacity,
            inflight: occ.inflight,
            draining: occ.draining,
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.job_tx.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn scoped_runs_every_item() {
        let results = run_scoped(0..100usize, 4, 8, |index, item| {
            assert_eq!(index, item);
            item * 2
        });
        let mut results = results;
        results.sort_unstable();
        assert_eq!(results, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn streamed_emits_in_submission_order() {
        let mut seen = Vec::new();
        run_scoped_streamed(
            0..1000usize,
            4,
            8,
            |index, item| {
                assert_eq!(index, item);
                item * 3
            },
            &mut |index, result| seen.push((index, result)),
        );
        assert_eq!(seen.len(), 1000);
        for (i, (index, result)) in seen.iter().enumerate() {
            assert_eq!(*index, i);
            assert_eq!(*result, i * 3);
        }
    }

    #[test]
    fn streamed_survives_a_lazy_unsized_source() {
        // An iterator with no usable size hint and more items than any
        // channel bound; the run must still complete in order.
        let source = (0..500usize).filter(|i| i % 2 == 0);
        let mut count = 0usize;
        let mut last = None;
        run_scoped_streamed(source, 3, 2, |_, item| item, &mut |index, item| {
            assert_eq!(index * 2, item);
            last = Some(item);
            count += 1;
        });
        assert_eq!(count, 250);
        assert_eq!(last, Some(498));
    }

    #[test]
    fn pool_runs_jobs_and_reports_occupancy() {
        let pool = WorkerPool::new(2, 4);
        assert_eq!(pool.stats().capacity, 6);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..6 {
            let mut ticket = pool.try_admit(1).unwrap();
            let counter = Arc::clone(&counter);
            pool.submit(&mut ticket, move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), 6);
        assert_eq!(pool.stats().inflight, 0);
        pool.drain();
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let pool = WorkerPool::new(1, 1);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = Arc::new(Mutex::new(release_rx));
        // Fill both slots with jobs that wait for permission to finish.
        let mut tickets = Vec::new();
        for _ in 0..2 {
            let mut ticket = pool.try_admit(1).unwrap();
            let release_rx = Arc::clone(&release_rx);
            pool.submit(&mut ticket, move || {
                let _ = release_rx.lock().unwrap().recv();
            });
            tickets.push(ticket);
        }
        assert_eq!(pool.try_admit(1).unwrap_err(), AdmitError::Overloaded);
        release_tx.send(()).unwrap();
        release_tx.send(()).unwrap();
        pool.wait_idle();
        assert!(pool.try_admit(1).is_ok());
    }

    #[test]
    fn unused_ticket_slots_release_on_drop() {
        let pool = WorkerPool::new(1, 3);
        let ticket = pool.try_admit(4).unwrap();
        assert_eq!(pool.stats().inflight, 4);
        assert_eq!(pool.try_admit(1).unwrap_err(), AdmitError::Overloaded);
        drop(ticket);
        assert_eq!(pool.stats().inflight, 0);
    }

    #[test]
    fn draining_pool_rejects_new_admissions_but_finishes_work() {
        let pool = WorkerPool::new(1, 2);
        let mut ticket = pool.try_admit(1).unwrap();
        let done = Arc::new(AtomicUsize::new(0));
        let flag = Arc::clone(&done);
        pool.submit(&mut ticket, move || {
            thread::sleep(Duration::from_millis(20));
            flag.fetch_add(1, Ordering::SeqCst);
        });
        pool.start_drain();
        assert_eq!(pool.try_admit(1).unwrap_err(), AdmitError::Draining);
        assert_eq!(pool.admit_blocking(1).unwrap_err(), AdmitError::Draining);
        pool.drain();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn panicking_job_releases_its_slot() {
        let pool = WorkerPool::new(1, 1);
        let mut ticket = pool.try_admit(1).unwrap();
        pool.submit(&mut ticket, || panic!("job blew up"));
        // If the slot leaked, this would deadlock; a timeout-free pass
        // proves release-on-panic.
        pool.wait_idle();
        assert_eq!(pool.stats().inflight, 0);
        assert!(pool.try_admit(2).is_ok());
    }

    #[test]
    fn blocking_admission_waits_for_capacity() {
        let pool = Arc::new(WorkerPool::new(1, 1));
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = Arc::new(Mutex::new(release_rx));
        for _ in 0..2 {
            let mut ticket = pool.try_admit(1).unwrap();
            let release_rx = Arc::clone(&release_rx);
            pool.submit(&mut ticket, move || {
                let _ = release_rx.lock().unwrap().recv();
            });
        }
        let waiter = {
            let pool = Arc::clone(&pool);
            thread::spawn(move || pool.admit_blocking(1).map(|t| t.remaining()))
        };
        // Unblock one job; the waiter's reservation must then succeed.
        release_tx.send(()).unwrap();
        assert_eq!(waiter.join().unwrap().unwrap(), 1);
        release_tx.send(()).unwrap();
        pool.wait_idle();
    }
}
