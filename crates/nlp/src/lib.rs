//! # ppchecker-nlp
//!
//! A from-scratch NLP substrate for the PPChecker reproduction: tokenizer,
//! sentence splitter (with the paper's enumeration repair), part-of-speech
//! tagger, noun-phrase chunker, lemmatizer, and a deterministic
//! typed-dependency parser producing the Stanford-dependency subset the
//! PPChecker pipeline consumes.
//!
//! The original system (Yu et al., DSN 2016) used NLTK and the Stanford
//! Parser; this crate substitutes rule-based equivalents tuned for the
//! constrained register of privacy-policy English.
//!
//! # Examples
//!
//! ```
//! use ppchecker_nlp::depparse::{parse, Rel};
//!
//! let p = parse("we will not collect your location");
//! let root = p.root.unwrap();
//! assert_eq!(p.tokens[root].lemma(), "collect");
//! assert!(p.dependent(root, Rel::Neg).is_some());
//! ```
//!
//! All text flows through the interning layer in [`mod@intern`]: tokens carry
//! [`Symbol`] handles rather than owned strings, and downstream crates
//! compare, hash and memoize on those `u32` handles (see DESIGN.md §9).

pub mod chunk;
pub mod depparse;
pub mod intern;
pub mod lemma;
pub mod lexicon;
pub mod sentence;
pub mod simd;
pub mod tagger;
pub mod token;
pub mod tree;

pub use chunk::NounPhrase;
pub use depparse::{parse, Dependency, Parse, Rel};
pub use intern::{
    intern, resolve, Interner, InternerStats, Symbol, SymbolSet, DEFAULT_INTERN_SOFT_CAP_BYTES,
};
pub use sentence::split_sentences;
pub use token::{Tag, Token};
