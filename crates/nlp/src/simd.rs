//! Runtime-dispatched SIMD byte-class scanners for the tokenizer.
//!
//! Tokenizing is the innermost text loop of the pipeline: every policy
//! sentence, description sentence, and lib-policy sentence passes through
//! [`crate::token::tokenize`], and at corpus scale that is millions of
//! calls whose time is dominated by classifying bytes (word characters,
//! whitespace). This module vectorizes the two classifying scans with
//! `std::arch` x86 intrinsics behind one runtime dispatch decision,
//! mirroring the idiom of the ESA kernel's `simd` module. The scalar
//! loops stay as the always-available reference, and the vector paths
//! return **exactly** the index the scalar predicate loop would — there
//! is no numeric accumulation here, so equivalence is structural: both
//! paths stop at the first byte outside the class.
//!
//! * [`word_end`] — advance past `[0-9A-Za-z_]` runs, 32 bytes (AVX2) or
//!   16 bytes (SSE2) per step. Range membership is computed with the
//!   unsigned `max/min + cmpeq` trick, so bytes ≥ 0x80 (which never
//!   appear on the tokenizer's ASCII fast path, but keep the scanner
//!   total) classify correctly as non-word.
//! * [`skip_spaces`] — advance past ASCII whitespace. The class is the
//!   ASCII subset of Unicode `White_Space` (`\t \n \x0B \x0C \r` and
//!   space), matching `char::is_whitespace` on the fast path's domain.
//!
//! Dispatch is decided once per process: `PPCHECKER_NO_SIMD=1` forces
//! the scalar reference, otherwise AVX2 when the CPU has it, then SSE2
//! (x86-64 baseline), then scalar elsewhere. [`force_scalar`] is the
//! test hook behind the differential suites.

use std::sync::atomic::{AtomicU8, Ordering};

/// Dispatch states for [`DISPATCH`].
const UNDECIDED: u8 = 0;
const SCALAR: u8 = 1;
#[cfg(target_arch = "x86_64")]
const SSE2: u8 = 2;
#[cfg(target_arch = "x86_64")]
const AVX2: u8 = 3;

static DISPATCH: AtomicU8 = AtomicU8::new(UNDECIDED);

/// Environment + CPUID detection, run once (or again after
/// [`force_scalar`]`(false)`).
fn detect() -> u8 {
    let forced_off =
        std::env::var("PPCHECKER_NO_SIMD").map(|v| !v.is_empty() && v != "0").unwrap_or(false);
    if forced_off {
        return SCALAR;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return AVX2;
        }
        SSE2
    }
    #[cfg(not(target_arch = "x86_64"))]
    SCALAR
}

#[inline]
fn dispatch() -> u8 {
    match DISPATCH.load(Ordering::Relaxed) {
        UNDECIDED => {
            let level = detect();
            DISPATCH.store(level, Ordering::Relaxed);
            level
        }
        level => level,
    }
}

/// `true` when a vector path (AVX2 or SSE2) is active.
pub fn simd_active() -> bool {
    dispatch() != SCALAR
}

/// Human-readable name of the active path (`"avx2"`, `"sse2"`,
/// `"scalar"`), for bench and metrics labels.
pub fn active_path() -> &'static str {
    match dispatch() {
        #[cfg(target_arch = "x86_64")]
        AVX2 => "avx2",
        #[cfg(target_arch = "x86_64")]
        SSE2 => "sse2",
        _ => "scalar",
    }
}

/// Forces the scalar reference path (`true`) or re-runs detection
/// (`false`). Test hook — the differential suites flip this to compare
/// both paths inside one process, which the env var (read once) cannot.
pub fn force_scalar(on: bool) {
    DISPATCH.store(if on { SCALAR } else { detect() }, Ordering::Relaxed);
}

/// Word-character class of the tokenizer's ASCII fast path:
/// alphanumerics plus `_` (`char::is_alphanumeric || == '_'` restricted
/// to ASCII).
#[inline]
pub fn is_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// ASCII subset of Unicode `White_Space`: `\t \n \x0B \x0C \r` and
/// space. (Note `u8::is_ascii_whitespace` excludes `\x0B`, which
/// `char::is_whitespace` includes — the tokenizer's char path uses the
/// latter, so the fast path must too.)
#[inline]
pub fn is_space_byte(b: u8) -> bool {
    b == b' ' || (0x09..=0x0D).contains(&b)
}

fn word_end_scalar(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && is_word_byte(bytes[i]) {
        i += 1;
    }
    i
}

fn skip_spaces_scalar(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && is_space_byte(bytes[i]) {
        i += 1;
    }
    i
}

/// Generates one x86 scanner: classify a full block per step (the
/// closure returns a movemask with bit `k` set when lane `k` is *in* the
/// class), stop at the first 0 bit, and finish the sub-block tail with
/// the scalar reference loop.
macro_rules! x86_scan {
    ($name:ident, $feature:literal, $lanes:expr, $block_mask:expr, $scalar:ident) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = $feature)]
        unsafe fn $name(bytes: &[u8], mut i: usize) -> usize {
            const LANES: usize = $lanes;
            const FULL: u32 = (u64::wrapping_shl(1, LANES as u32) - 1) as u32;
            let n = bytes.len();
            while i + LANES <= n {
                // SAFETY: i + LANES <= n bounds the unaligned block load.
                let mask: u32 = unsafe { $block_mask(bytes.as_ptr().add(i)) };
                let misses = !mask & FULL;
                if misses != 0 {
                    return i + misses.trailing_zeros() as usize;
                }
                i += LANES;
            }
            $scalar(bytes, i)
        }
    };
}

x86_scan!(
    word_end_avx2,
    "avx2",
    32,
    |p: *const u8| {
        use std::arch::x86_64::*;
        let x = _mm256_loadu_si256(p as *const __m256i);
        // Unsigned range test: lo <= x <= hi as max(x, lo) == x && min(x, hi) == x.
        let in_range = |lo: u8, hi: u8| {
            _mm256_and_si256(
                _mm256_cmpeq_epi8(_mm256_max_epu8(x, _mm256_set1_epi8(lo as i8)), x),
                _mm256_cmpeq_epi8(_mm256_min_epu8(x, _mm256_set1_epi8(hi as i8)), x),
            )
        };
        let word = _mm256_or_si256(
            _mm256_or_si256(in_range(b'0', b'9'), in_range(b'A', b'Z')),
            _mm256_or_si256(
                in_range(b'a', b'z'),
                _mm256_cmpeq_epi8(x, _mm256_set1_epi8(b'_' as i8)),
            ),
        );
        _mm256_movemask_epi8(word) as u32
    },
    word_end_scalar
);

x86_scan!(
    word_end_sse2,
    "sse2",
    16,
    |p: *const u8| {
        use std::arch::x86_64::*;
        let x = _mm_loadu_si128(p as *const __m128i);
        let in_range = |lo: u8, hi: u8| {
            _mm_and_si128(
                _mm_cmpeq_epi8(_mm_max_epu8(x, _mm_set1_epi8(lo as i8)), x),
                _mm_cmpeq_epi8(_mm_min_epu8(x, _mm_set1_epi8(hi as i8)), x),
            )
        };
        let word = _mm_or_si128(
            _mm_or_si128(in_range(b'0', b'9'), in_range(b'A', b'Z')),
            _mm_or_si128(in_range(b'a', b'z'), _mm_cmpeq_epi8(x, _mm_set1_epi8(b'_' as i8))),
        );
        _mm_movemask_epi8(word) as u32
    },
    word_end_scalar
);

x86_scan!(
    skip_spaces_avx2,
    "avx2",
    32,
    |p: *const u8| {
        use std::arch::x86_64::*;
        let x = _mm256_loadu_si256(p as *const __m256i);
        let ctl = _mm256_and_si256(
            _mm256_cmpeq_epi8(_mm256_max_epu8(x, _mm256_set1_epi8(0x09)), x),
            _mm256_cmpeq_epi8(_mm256_min_epu8(x, _mm256_set1_epi8(0x0D)), x),
        );
        let ws = _mm256_or_si256(ctl, _mm256_cmpeq_epi8(x, _mm256_set1_epi8(b' ' as i8)));
        _mm256_movemask_epi8(ws) as u32
    },
    skip_spaces_scalar
);

x86_scan!(
    skip_spaces_sse2,
    "sse2",
    16,
    |p: *const u8| {
        use std::arch::x86_64::*;
        let x = _mm_loadu_si128(p as *const __m128i);
        let ctl = _mm_and_si128(
            _mm_cmpeq_epi8(_mm_max_epu8(x, _mm_set1_epi8(0x09)), x),
            _mm_cmpeq_epi8(_mm_min_epu8(x, _mm_set1_epi8(0x0D)), x),
        );
        let ws = _mm_or_si128(ctl, _mm_cmpeq_epi8(x, _mm_set1_epi8(b' ' as i8)));
        _mm_movemask_epi8(ws) as u32
    },
    skip_spaces_scalar
);

/// First index `>= from` whose byte is **not** a word character
/// (`[0-9A-Za-z_]`), or `bytes.len()`.
#[inline]
pub fn word_end(bytes: &[u8], from: usize) -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: dispatch() returns AVX2/SSE2 only after the CPUID
        // check in detect() proved the feature is present.
        match dispatch() {
            AVX2 => return unsafe { word_end_avx2(bytes, from) },
            SSE2 => return unsafe { word_end_sse2(bytes, from) },
            _ => {}
        }
    }
    word_end_scalar(bytes, from)
}

/// First index `>= from` whose byte is **not** ASCII whitespace (see
/// [`is_space_byte`]), or `bytes.len()`.
#[inline]
pub fn skip_spaces(bytes: &[u8], from: usize) -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: as in `word_end`.
        match dispatch() {
            AVX2 => return unsafe { skip_spaces_avx2(bytes, from) },
            SSE2 => return unsafe { skip_spaces_sse2(bytes, from) },
            _ => {}
        }
    }
    skip_spaces_scalar(bytes, from)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Seed-deterministic xorshift (no rand dependency in unit tests).
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0.wrapping_add(0x9e3779b97f4a7c15);
            self.0 = x;
            x ^= x >> 30;
            x = x.wrapping_mul(0xbf58476d1ce4e5b9);
            x ^= x >> 27;
            x = x.wrapping_mul(0x94d049bb133111eb);
            x ^ (x >> 31)
        }
    }

    #[test]
    fn scanners_match_scalar_on_random_bytes() {
        let mut rng = Rng(29);
        for case in 0..500u64 {
            let len = (rng.next() % 200) as usize;
            // Bias towards class bytes so runs actually span blocks; keep
            // some bytes >= 0x80 to prove the unsigned range tests hold.
            let bytes: Vec<u8> = (0..len)
                .map(|_| match rng.next() % 10 {
                    0..=5 => b"aZ0_ \t"[(rng.next() % 6) as usize],
                    6 => (rng.next() % 256) as u8,
                    7 => 0x0B,
                    _ => b'.',
                })
                .collect();
            for from in [0, len / 2, len] {
                assert_eq!(
                    word_end(&bytes, from),
                    word_end_scalar(&bytes, from),
                    "case {case} from {from} path {}",
                    active_path()
                );
                assert_eq!(
                    skip_spaces(&bytes, from),
                    skip_spaces_scalar(&bytes, from),
                    "case {case} from {from} path {}",
                    active_path()
                );
            }
        }
    }

    #[test]
    fn forced_scalar_matches_detected_path() {
        let bytes = b"alpha_42 beta\tgamma-delta...".to_vec();
        let auto = (word_end(&bytes, 0), skip_spaces(&bytes, 8));
        force_scalar(true);
        assert_eq!(active_path(), "scalar");
        let forced = (word_end(&bytes, 0), skip_spaces(&bytes, 8));
        force_scalar(false);
        assert_eq!(auto, forced);
        assert_eq!(auto.0, 8, "word run ends at the space");
        assert_eq!(auto.1, 9, "one space skipped");
    }

    #[test]
    fn long_runs_cross_block_boundaries() {
        let word: Vec<u8> = std::iter::repeat_n(b'x', 100).chain([b' ']).collect();
        assert_eq!(word_end(&word, 0), 100);
        let spaces: Vec<u8> = std::iter::repeat_n(b' ', 77).chain([b'q']).collect();
        assert_eq!(skip_spaces(&spaces, 0), 77);
    }

    #[test]
    fn class_predicates_match_char_semantics_on_ascii() {
        for b in 0u8..128 {
            let c = b as char;
            assert_eq!(is_word_byte(b), c.is_alphanumeric() || c == '_', "byte {b:#x}");
            assert_eq!(is_space_byte(b), c.is_whitespace(), "byte {b:#x}");
        }
    }
}
