//! Tokens, part-of-speech tags, and the tokenizer.

use crate::intern::{intern, Symbol};
use std::fmt;

/// Part-of-speech tags, modeled on the Penn Treebank tag set that the
/// Stanford Parser (used by the paper) emits. Only the tags the PPChecker
/// pipeline consumes are distinguished; everything else is [`Tag::Other`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tag {
    /// Singular or mass noun (`NN`).
    Noun,
    /// Plural noun (`NNS`).
    NounPlural,
    /// Proper noun (`NNP`).
    NounProper,
    /// Personal pronoun (`PRP`): we, you, they, it, ...
    Pronoun,
    /// Possessive pronoun (`PRP$`): your, our, their, ...
    PronounPoss,
    /// Verb, base form (`VB`).
    VerbBase,
    /// Verb, past tense (`VBD`).
    VerbPast,
    /// Verb, gerund / present participle (`VBG`).
    VerbGerund,
    /// Verb, past participle (`VBN`).
    VerbPastPart,
    /// Verb, 3rd-person singular present (`VBZ`).
    Verb3sg,
    /// Verb, non-3rd-person singular present (`VBP`).
    VerbPres,
    /// Modal (`MD`): will, may, can, must, should, would, could, might.
    Modal,
    /// Determiner (`DT`): the, a, an, this, no, any, ...
    Det,
    /// Adjective (`JJ`).
    Adj,
    /// Adverb (`RB`), including negation adverbs like "not".
    Adv,
    /// Preposition or subordinating conjunction (`IN`).
    Prep,
    /// Coordinating conjunction (`CC`): and, or, but.
    Conj,
    /// The word "to" (`TO`).
    To,
    /// Cardinal number (`CD`).
    Num,
    /// Wh-word (`WDT`/`WP`/`WRB`): which, who, when, where, ...
    Wh,
    /// Punctuation.
    Punct,
    /// Anything else.
    Other,
}

impl Tag {
    /// Returns `true` for any verbal tag (`VB*`).
    pub fn is_verb(self) -> bool {
        matches!(
            self,
            Tag::VerbBase
                | Tag::VerbPast
                | Tag::VerbGerund
                | Tag::VerbPastPart
                | Tag::Verb3sg
                | Tag::VerbPres
        )
    }

    /// Returns `true` for any nominal tag (`NN*`, pronouns).
    pub fn is_nominal(self) -> bool {
        matches!(self, Tag::Noun | Tag::NounPlural | Tag::NounProper | Tag::Pronoun)
    }

    /// Returns `true` for tags that may appear inside a noun phrase before
    /// its head (determiners, possessives, adjectives, numbers, nouns).
    pub fn is_np_interior(self) -> bool {
        matches!(
            self,
            Tag::Det
                | Tag::PronounPoss
                | Tag::Adj
                | Tag::Num
                | Tag::Noun
                | Tag::NounPlural
                | Tag::NounProper
                | Tag::VerbGerund
        )
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Tag::Noun => "NN",
            Tag::NounPlural => "NNS",
            Tag::NounProper => "NNP",
            Tag::Pronoun => "PRP",
            Tag::PronounPoss => "PRP$",
            Tag::VerbBase => "VB",
            Tag::VerbPast => "VBD",
            Tag::VerbGerund => "VBG",
            Tag::VerbPastPart => "VBN",
            Tag::Verb3sg => "VBZ",
            Tag::VerbPres => "VBP",
            Tag::Modal => "MD",
            Tag::Det => "DT",
            Tag::Adj => "JJ",
            Tag::Adv => "RB",
            Tag::Prep => "IN",
            Tag::Conj => "CC",
            Tag::To => "TO",
            Tag::Num => "CD",
            Tag::Wh => "W",
            Tag::Punct => ".",
            Tag::Other => "X",
        };
        f.write_str(s)
    }
}

/// A single token: its interned surface text, lowercased form, and (after
/// tagging) its part of speech and lemma.
///
/// The three text fields are [`Symbol`]s into the process-wide interner —
/// a `Token` is `Copy`-cheap to clone and carries no owned strings. The
/// source position survives as the `start` byte offset (with
/// [`Token::end`] derived from the resolved text), so span-based slicing
/// of the original sentence still works. Same-named accessor methods
/// ([`Token::text`], [`Token::lower`], [`Token::lemma`]) resolve the
/// symbols to `&'static str` for string-shaped call sites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Surface form as it appeared in the input (interned).
    pub text: Symbol,
    /// Lowercased surface form (interned).
    pub lower: Symbol,
    /// Part-of-speech tag; [`Tag::Other`] until tagged.
    pub tag: Tag,
    /// Lemma (base form); equals `lower` until lemmatized (interned).
    pub lemma: Symbol,
    /// Byte offset of the token start in the original sentence string.
    pub start: usize,
}

impl Token {
    /// Creates an untagged token, interning its surface form.
    pub fn new(text: &str, start: usize) -> Self {
        let text_sym = intern(text);
        // Policy sentences are normalized to lowercase upstream, so the
        // common case needs no second allocation or interner probe.
        let lower = if text.chars().any(|c| c.is_uppercase()) {
            intern(&text.to_lowercase())
        } else {
            text_sym
        };
        Token { text: text_sym, lemma: lower, lower, tag: Tag::Other, start }
    }

    /// The surface text.
    pub fn text(&self) -> &'static str {
        self.text.as_str()
    }

    /// The lowercased surface text.
    pub fn lower(&self) -> &'static str {
        self.lower.as_str()
    }

    /// The lemma text.
    pub fn lemma(&self) -> &'static str {
        self.lemma.as_str()
    }

    /// One past the last byte of the token in the original sentence.
    pub fn end(&self) -> usize {
        self.start + self.text().len()
    }

    /// Returns `true` if this token is punctuation-only.
    pub fn is_punct(&self) -> bool {
        let text = self.text();
        !text.is_empty() && text.chars().all(|c| c.is_ascii_punctuation())
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.text, self.tag)
    }
}

/// Splits a sentence into word and punctuation tokens.
///
/// Contractions of the form `n't` and possessive `'s` are split off, matching
/// the Penn Treebank convention used by the Stanford tokenizer. Hyphenated
/// words (`e-mail`, `third-party`) are kept as single tokens.
///
/// # Examples
///
/// ```
/// use ppchecker_nlp::token::tokenize;
/// let toks = tokenize("We don't sell your e-mail address.");
/// let words: Vec<&str> = toks.iter().map(|t| t.text()).collect();
/// assert_eq!(words, ["We", "do", "n't", "sell", "your", "e-mail", "address", "."]);
/// ```
pub fn tokenize(sentence: &str) -> Vec<Token> {
    let _span = ppchecker_obs::span!("nlp.tokenize");
    let mut tokens = Vec::new();
    // (byte offset, char) pairs — all slicing below happens on char
    // boundaries.
    let chars: Vec<(usize, char)> = sentence.char_indices().collect();
    let n = chars.len();
    let end_of = |k: usize| {
        if k < n {
            chars[k].0
        } else {
            sentence.len()
        }
    };
    let mut i = 0;
    while i < n {
        let (start, c) = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_alphanumeric() || c == '_' {
            let mut j = i;
            while j < n {
                let cj = chars[j].1;
                let next = chars.get(j + 1).map(|&(_, c)| c);
                if cj.is_alphanumeric() || cj == '_' {
                    j += 1;
                } else if (cj == '-' || cj == '/')
                    && next.is_some_and(|c| c.is_alphanumeric() || c == '/')
                {
                    // Keep hyphens and URI slashes inside a token
                    // (e.g. "third-party", "content://contacts").
                    j += 1;
                } else if cj == ':'
                    && next == Some('/')
                    && chars.get(j + 2).map(|&(_, c)| c) == Some('/')
                {
                    // URI scheme separator: "content://".
                    j += 1;
                } else if cj == '.'
                    && next.is_some_and(|c| c.is_alphanumeric())
                    && word_so_far_is_dotted(&sentence[start..chars[j].0])
                {
                    // Dotted identifiers like package names: com.example.app
                    j += 1;
                } else {
                    break;
                }
            }
            let word = &sentence[start..end_of(j)];
            // Split trailing "n't" / "'s" style contractions.
            push_word(&mut tokens, word, start);
            i = j;
        } else if c == '\'' && i + 1 < n {
            // Apostrophe beginning a contraction suffix: 's, 't, 're, 'll...
            let mut j = i + 1;
            while j < n && chars[j].1.is_alphanumeric() {
                j += 1;
            }
            let suffix = &sentence[start..end_of(j)];
            // "don't"/"won't": move the "n" from the previous token so the
            // negation surfaces as the Penn-style "n't" token.
            if suffix == "'t"
                && tokens.last().is_some_and(|t| t.lower().ends_with('n') && t.lower().len() > 1)
            {
                let prev = tokens.pop().expect("checked non-empty");
                let prev_text = prev.text();
                let keep_len = prev_text.len() - 1;
                let prev_start = prev.start;
                tokens.push(Token::new(&prev_text[..keep_len], prev_start));
                tokens.push(Token::new("n't", prev_start + keep_len));
            } else {
                tokens.push(Token::new(suffix, start));
            }
            i = j;
        } else {
            tokens.push(Token::new(&sentence[start..end_of(i + 1)], start));
            i += 1;
        }
    }
    tokens
}

/// Heuristic: treat `com.example` style strings (contains a previous dot or
/// looks like a reverse-domain prefix) as dotted identifiers.
fn word_so_far_is_dotted(prefix: &str) -> bool {
    prefix.contains('.')
        || matches!(prefix, "com" | "org" | "net" | "android" | "io" | "www" | "edu")
}

fn push_word(tokens: &mut Vec<Token>, word: &str, start: usize) {
    let lower = word.to_lowercase();
    if let Some(stem) = lower.strip_suffix("n't") {
        if !stem.is_empty() {
            let keep = &word[..word.len() - 3];
            tokens.push(Token::new(keep, start));
            tokens.push(Token::new(&word[word.len() - 3..], start + keep.len()));
            return;
        }
    }
    tokens.push(Token::new(word, start));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_simple_sentence() {
        let toks = tokenize("We will collect your location.");
        let words: Vec<&str> = toks.iter().map(|t| t.text()).collect();
        assert_eq!(words, ["We", "will", "collect", "your", "location", "."]);
    }

    #[test]
    fn tokenize_keeps_hyphenated_words() {
        let toks = tokenize("third-party libraries");
        assert_eq!(toks[0].text(), "third-party");
    }

    #[test]
    fn tokenize_splits_negative_contraction() {
        let toks = tokenize("we won't share data");
        let words: Vec<&str> = toks.iter().map(|t| t.text()).collect();
        assert_eq!(words, ["we", "wo", "n't", "share", "data"]);
    }

    #[test]
    fn tokenize_handles_uri_like_tokens() {
        let toks = tokenize("query content://com.android.calendar now");
        assert!(toks.iter().any(|t| t.text().contains("content://")));
    }

    #[test]
    fn tokenize_empty_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n ").is_empty());
    }

    #[test]
    fn tokenize_records_offsets() {
        let toks = tokenize("a bc");
        assert_eq!(toks[0].start, 0);
        assert_eq!(toks[1].start, 2);
    }

    #[test]
    fn punctuation_detection() {
        let toks = tokenize("data, and logs;");
        assert!(toks.iter().any(|t| t.text() == "," && t.is_punct()));
        assert!(toks.iter().any(|t| t.text() == ";" && t.is_punct()));
    }

    #[test]
    fn lowercase_input_shares_symbols() {
        let toks = tokenize("collect location");
        assert_eq!(toks[0].text, toks[0].lower);
        let toks2 = tokenize("Collect location");
        assert_ne!(toks2[0].text, toks2[0].lower);
        assert_eq!(toks2[0].lower(), "collect");
        assert_eq!(toks2[0].end(), 7);
    }

    #[test]
    fn tag_predicates() {
        assert!(Tag::VerbPastPart.is_verb());
        assert!(!Tag::Noun.is_verb());
        assert!(Tag::Pronoun.is_nominal());
        assert!(Tag::Adj.is_np_interior());
        assert!(!Tag::Conj.is_np_interior());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Tag::Noun.to_string(), "NN");
        let t = Token::new("Data", 0);
        assert_eq!(t.to_string(), "Data/X");
    }
}
