//! Tokens, part-of-speech tags, and the tokenizer.

use crate::intern::{intern, Symbol};
use std::fmt;

/// Part-of-speech tags, modeled on the Penn Treebank tag set that the
/// Stanford Parser (used by the paper) emits. Only the tags the PPChecker
/// pipeline consumes are distinguished; everything else is [`Tag::Other`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tag {
    /// Singular or mass noun (`NN`).
    Noun,
    /// Plural noun (`NNS`).
    NounPlural,
    /// Proper noun (`NNP`).
    NounProper,
    /// Personal pronoun (`PRP`): we, you, they, it, ...
    Pronoun,
    /// Possessive pronoun (`PRP$`): your, our, their, ...
    PronounPoss,
    /// Verb, base form (`VB`).
    VerbBase,
    /// Verb, past tense (`VBD`).
    VerbPast,
    /// Verb, gerund / present participle (`VBG`).
    VerbGerund,
    /// Verb, past participle (`VBN`).
    VerbPastPart,
    /// Verb, 3rd-person singular present (`VBZ`).
    Verb3sg,
    /// Verb, non-3rd-person singular present (`VBP`).
    VerbPres,
    /// Modal (`MD`): will, may, can, must, should, would, could, might.
    Modal,
    /// Determiner (`DT`): the, a, an, this, no, any, ...
    Det,
    /// Adjective (`JJ`).
    Adj,
    /// Adverb (`RB`), including negation adverbs like "not".
    Adv,
    /// Preposition or subordinating conjunction (`IN`).
    Prep,
    /// Coordinating conjunction (`CC`): and, or, but.
    Conj,
    /// The word "to" (`TO`).
    To,
    /// Cardinal number (`CD`).
    Num,
    /// Wh-word (`WDT`/`WP`/`WRB`): which, who, when, where, ...
    Wh,
    /// Punctuation.
    Punct,
    /// Anything else.
    Other,
}

impl Tag {
    /// Returns `true` for any verbal tag (`VB*`).
    pub fn is_verb(self) -> bool {
        matches!(
            self,
            Tag::VerbBase
                | Tag::VerbPast
                | Tag::VerbGerund
                | Tag::VerbPastPart
                | Tag::Verb3sg
                | Tag::VerbPres
        )
    }

    /// Returns `true` for any nominal tag (`NN*`, pronouns).
    pub fn is_nominal(self) -> bool {
        matches!(self, Tag::Noun | Tag::NounPlural | Tag::NounProper | Tag::Pronoun)
    }

    /// Returns `true` for tags that may appear inside a noun phrase before
    /// its head (determiners, possessives, adjectives, numbers, nouns).
    pub fn is_np_interior(self) -> bool {
        matches!(
            self,
            Tag::Det
                | Tag::PronounPoss
                | Tag::Adj
                | Tag::Num
                | Tag::Noun
                | Tag::NounPlural
                | Tag::NounProper
                | Tag::VerbGerund
        )
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Tag::Noun => "NN",
            Tag::NounPlural => "NNS",
            Tag::NounProper => "NNP",
            Tag::Pronoun => "PRP",
            Tag::PronounPoss => "PRP$",
            Tag::VerbBase => "VB",
            Tag::VerbPast => "VBD",
            Tag::VerbGerund => "VBG",
            Tag::VerbPastPart => "VBN",
            Tag::Verb3sg => "VBZ",
            Tag::VerbPres => "VBP",
            Tag::Modal => "MD",
            Tag::Det => "DT",
            Tag::Adj => "JJ",
            Tag::Adv => "RB",
            Tag::Prep => "IN",
            Tag::Conj => "CC",
            Tag::To => "TO",
            Tag::Num => "CD",
            Tag::Wh => "W",
            Tag::Punct => ".",
            Tag::Other => "X",
        };
        f.write_str(s)
    }
}

/// A single token: its interned surface text, lowercased form, and (after
/// tagging) its part of speech and lemma.
///
/// The three text fields are [`Symbol`]s into the process-wide interner —
/// a `Token` is `Copy`-cheap to clone and carries no owned strings. The
/// source position survives as the `start` byte offset (with
/// [`Token::end`] derived from the resolved text), so span-based slicing
/// of the original sentence still works. Same-named accessor methods
/// ([`Token::text`], [`Token::lower`], [`Token::lemma`]) resolve the
/// symbols to `&'static str` for string-shaped call sites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Surface form as it appeared in the input (interned).
    pub text: Symbol,
    /// Lowercased surface form (interned).
    pub lower: Symbol,
    /// Part-of-speech tag; [`Tag::Other`] until tagged.
    pub tag: Tag,
    /// Lemma (base form); equals `lower` until lemmatized (interned).
    pub lemma: Symbol,
    /// Byte offset of the token start in the original sentence string.
    pub start: usize,
}

impl Token {
    /// Creates an untagged token, interning its surface form.
    pub fn new(text: &str, start: usize) -> Self {
        let text_sym = intern(text);
        // Policy sentences are normalized to lowercase upstream, so the
        // common case needs no second allocation or interner probe; and
        // mixed-case ASCII tokens (most of the rest) lowercase in a
        // stack buffer instead of a heap String.
        let lower = if text.is_ascii() {
            if text.bytes().any(|b| b.is_ascii_uppercase()) {
                let mut buf = [0u8; 64];
                if let Some(buf) = buf.get_mut(..text.len()) {
                    buf.copy_from_slice(text.as_bytes());
                    buf.make_ascii_lowercase();
                    intern(std::str::from_utf8(buf).expect("ascii stays utf-8"))
                } else {
                    intern(&text.to_ascii_lowercase())
                }
            } else {
                text_sym
            }
        } else if text.chars().any(|c| c.is_uppercase()) {
            intern(&text.to_lowercase())
        } else {
            text_sym
        };
        Token { text: text_sym, lemma: lower, lower, tag: Tag::Other, start }
    }

    /// The surface text.
    pub fn text(&self) -> &'static str {
        self.text.as_str()
    }

    /// The lowercased surface text.
    pub fn lower(&self) -> &'static str {
        self.lower.as_str()
    }

    /// The lemma text.
    pub fn lemma(&self) -> &'static str {
        self.lemma.as_str()
    }

    /// One past the last byte of the token in the original sentence.
    pub fn end(&self) -> usize {
        self.start + self.text().len()
    }

    /// Returns `true` if this token is punctuation-only.
    pub fn is_punct(&self) -> bool {
        let text = self.text();
        !text.is_empty() && text.chars().all(|c| c.is_ascii_punctuation())
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.text, self.tag)
    }
}

/// Splits a sentence into word and punctuation tokens.
///
/// Contractions of the form `n't` and possessive `'s` are split off, matching
/// the Penn Treebank convention used by the Stanford tokenizer. Hyphenated
/// words (`e-mail`, `third-party`) are kept as single tokens.
///
/// # Examples
///
/// ```
/// use ppchecker_nlp::token::tokenize;
/// let toks = tokenize("We don't sell your e-mail address.");
/// let words: Vec<&str> = toks.iter().map(|t| t.text()).collect();
/// assert_eq!(words, ["We", "do", "n't", "sell", "your", "e-mail", "address", "."]);
/// ```
pub fn tokenize(sentence: &str) -> Vec<Token> {
    let _span = ppchecker_obs::span!("nlp.tokenize");
    if sentence.is_ascii() {
        // Almost all pipeline text is ASCII: scan bytes directly with
        // the SIMD classifiers — no per-sentence `Vec<(usize, char)>`.
        tokenize_ascii(sentence)
    } else {
        tokenize_chars(sentence)
    }
}

/// Byte-at-a-time tokenizer for ASCII input, structurally mirroring
/// [`tokenize_chars`] (every branch corresponds one-to-one; the
/// differential tests assert identical output on arbitrary ASCII). Word
/// runs and whitespace runs advance through [`crate::simd`]'s
/// block-classifying scanners.
fn tokenize_ascii(sentence: &str) -> Vec<Token> {
    use crate::simd::{is_space_byte, is_word_byte, skip_spaces, word_end};
    let bytes = sentence.as_bytes();
    let n = bytes.len();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < n {
        let start = i;
        let c = bytes[i];
        if is_space_byte(c) {
            i = skip_spaces(bytes, i + 1);
            continue;
        }
        if is_word_byte(c) {
            let mut j = i;
            loop {
                j = word_end(bytes, j);
                if j >= n {
                    break;
                }
                let cj = bytes[j];
                let next = bytes.get(j + 1).copied();
                if (cj == b'-' || cj == b'/')
                    && next.is_some_and(|c| c.is_ascii_alphanumeric() || c == b'/')
                {
                    // Keep hyphens and URI slashes inside a token
                    // (e.g. "third-party", "content://contacts").
                    j += 1;
                } else if cj == b':' && next == Some(b'/') && bytes.get(j + 2) == Some(&b'/') {
                    // URI scheme separator: "content://".
                    j += 1;
                } else if cj == b'.'
                    && next.is_some_and(|c| c.is_ascii_alphanumeric())
                    && word_so_far_is_dotted(&sentence[start..j])
                {
                    // Dotted identifiers like package names: com.example.app
                    j += 1;
                } else {
                    break;
                }
            }
            // Split trailing "n't" / "'s" style contractions.
            push_word(&mut tokens, &sentence[start..j], start);
            i = j;
        } else if c == b'\'' && i + 1 < n {
            // Apostrophe beginning a contraction suffix: 's, 't, 're, 'll...
            let mut j = i + 1;
            while j < n && bytes[j].is_ascii_alphanumeric() {
                j += 1;
            }
            let suffix = &sentence[start..j];
            // "don't"/"won't": move the "n" from the previous token so the
            // negation surfaces as the Penn-style "n't" token.
            if suffix == "'t"
                && tokens.last().is_some_and(|t| t.lower().ends_with('n') && t.lower().len() > 1)
            {
                let prev = tokens.pop().expect("checked non-empty");
                let prev_text = prev.text();
                let keep_len = prev_text.len() - 1;
                let prev_start = prev.start;
                tokens.push(Token::new(&prev_text[..keep_len], prev_start));
                tokens.push(Token::new("n't", prev_start + keep_len));
            } else {
                tokens.push(Token::new(suffix, start));
            }
            i = j;
        } else {
            tokens.push(Token::new(&sentence[start..start + 1], start));
            i += 1;
        }
    }
    tokens
}

/// Char-at-a-time reference tokenizer, used for non-ASCII input (and as
/// the differential baseline for [`tokenize_ascii`]).
fn tokenize_chars(sentence: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    // (byte offset, char) pairs — all slicing below happens on char
    // boundaries.
    let chars: Vec<(usize, char)> = sentence.char_indices().collect();
    let n = chars.len();
    let end_of = |k: usize| {
        if k < n {
            chars[k].0
        } else {
            sentence.len()
        }
    };
    let mut i = 0;
    while i < n {
        let (start, c) = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_alphanumeric() || c == '_' {
            let mut j = i;
            while j < n {
                let cj = chars[j].1;
                let next = chars.get(j + 1).map(|&(_, c)| c);
                if cj.is_alphanumeric() || cj == '_' {
                    j += 1;
                } else if (cj == '-' || cj == '/')
                    && next.is_some_and(|c| c.is_alphanumeric() || c == '/')
                {
                    // Keep hyphens and URI slashes inside a token
                    // (e.g. "third-party", "content://contacts").
                    j += 1;
                } else if cj == ':'
                    && next == Some('/')
                    && chars.get(j + 2).map(|&(_, c)| c) == Some('/')
                {
                    // URI scheme separator: "content://".
                    j += 1;
                } else if cj == '.'
                    && next.is_some_and(|c| c.is_alphanumeric())
                    && word_so_far_is_dotted(&sentence[start..chars[j].0])
                {
                    // Dotted identifiers like package names: com.example.app
                    j += 1;
                } else {
                    break;
                }
            }
            let word = &sentence[start..end_of(j)];
            // Split trailing "n't" / "'s" style contractions.
            push_word(&mut tokens, word, start);
            i = j;
        } else if c == '\'' && i + 1 < n {
            // Apostrophe beginning a contraction suffix: 's, 't, 're, 'll...
            let mut j = i + 1;
            while j < n && chars[j].1.is_alphanumeric() {
                j += 1;
            }
            let suffix = &sentence[start..end_of(j)];
            // "don't"/"won't": move the "n" from the previous token so the
            // negation surfaces as the Penn-style "n't" token.
            if suffix == "'t"
                && tokens.last().is_some_and(|t| t.lower().ends_with('n') && t.lower().len() > 1)
            {
                let prev = tokens.pop().expect("checked non-empty");
                let prev_text = prev.text();
                let keep_len = prev_text.len() - 1;
                let prev_start = prev.start;
                tokens.push(Token::new(&prev_text[..keep_len], prev_start));
                tokens.push(Token::new("n't", prev_start + keep_len));
            } else {
                tokens.push(Token::new(suffix, start));
            }
            i = j;
        } else {
            tokens.push(Token::new(&sentence[start..end_of(i + 1)], start));
            i += 1;
        }
    }
    tokens
}

/// Heuristic: treat `com.example` style strings (contains a previous dot or
/// looks like a reverse-domain prefix) as dotted identifiers.
fn word_so_far_is_dotted(prefix: &str) -> bool {
    prefix.contains('.')
        || matches!(prefix, "com" | "org" | "net" | "android" | "io" | "www" | "edu")
}

fn push_word(tokens: &mut Vec<Token>, word: &str, start: usize) {
    // Case-insensitive "n't" suffix with a non-empty stem. The only
    // chars that lowercase to 'n', '\'', 't' are their ASCII case pairs,
    // so the byte test is equivalent to lowercasing the whole word —
    // without allocating the lowercase copy on every word.
    let b = word.as_bytes();
    let has_nt = b.len() > 3
        && b[b.len() - 3].eq_ignore_ascii_case(&b'n')
        && b[b.len() - 2] == b'\''
        && b[b.len() - 1].eq_ignore_ascii_case(&b't');
    if has_nt {
        let keep = &word[..word.len() - 3];
        tokens.push(Token::new(keep, start));
        tokens.push(Token::new(&word[word.len() - 3..], start + keep.len()));
        return;
    }
    tokens.push(Token::new(word, start));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_simple_sentence() {
        let toks = tokenize("We will collect your location.");
        let words: Vec<&str> = toks.iter().map(|t| t.text()).collect();
        assert_eq!(words, ["We", "will", "collect", "your", "location", "."]);
    }

    #[test]
    fn tokenize_keeps_hyphenated_words() {
        let toks = tokenize("third-party libraries");
        assert_eq!(toks[0].text(), "third-party");
    }

    #[test]
    fn tokenize_splits_negative_contraction() {
        let toks = tokenize("we won't share data");
        let words: Vec<&str> = toks.iter().map(|t| t.text()).collect();
        assert_eq!(words, ["we", "wo", "n't", "share", "data"]);
    }

    #[test]
    fn tokenize_handles_uri_like_tokens() {
        let toks = tokenize("query content://com.android.calendar now");
        assert!(toks.iter().any(|t| t.text().contains("content://")));
    }

    #[test]
    fn tokenize_empty_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n ").is_empty());
    }

    #[test]
    fn tokenize_records_offsets() {
        let toks = tokenize("a bc");
        assert_eq!(toks[0].start, 0);
        assert_eq!(toks[1].start, 2);
    }

    #[test]
    fn punctuation_detection() {
        let toks = tokenize("data, and logs;");
        assert!(toks.iter().any(|t| t.text() == "," && t.is_punct()));
        assert!(toks.iter().any(|t| t.text() == ";" && t.is_punct()));
    }

    #[test]
    fn lowercase_input_shares_symbols() {
        let toks = tokenize("collect location");
        assert_eq!(toks[0].text, toks[0].lower);
        let toks2 = tokenize("Collect location");
        assert_ne!(toks2[0].text, toks2[0].lower);
        assert_eq!(toks2[0].lower(), "collect");
        assert_eq!(toks2[0].end(), 7);
    }

    #[test]
    fn tag_predicates() {
        assert!(Tag::VerbPastPart.is_verb());
        assert!(!Tag::Noun.is_verb());
        assert!(Tag::Pronoun.is_nominal());
        assert!(Tag::Adj.is_np_interior());
        assert!(!Tag::Conj.is_np_interior());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Tag::Noun.to_string(), "NN");
        let t = Token::new("Data", 0);
        assert_eq!(t.to_string(), "Data/X");
    }

    #[test]
    fn non_ascii_input_takes_the_char_path() {
        let toks = tokenize("données privées — café");
        let words: Vec<&str> = toks.iter().map(|t| t.text()).collect();
        assert_eq!(words, ["données", "privées", "—", "café"]);
    }

    #[test]
    fn long_token_lowercases_without_stack_buffer() {
        let long: String = "AbC".repeat(40);
        let t = Token::new(&long, 0);
        assert_eq!(t.lower(), long.to_lowercase());
    }

    fn assert_paths_agree(sentence: &str) {
        let fast = tokenize_ascii(sentence);
        let reference = tokenize_chars(sentence);
        let view = |ts: &[Token]| -> Vec<(String, usize)> {
            ts.iter().map(|t| (t.text().to_string(), t.start)).collect()
        };
        assert_eq!(view(&fast), view(&reference), "paths diverge on {sentence:?}");
        crate::simd::force_scalar(true);
        let scalar = tokenize_ascii(sentence);
        crate::simd::force_scalar(false);
        assert_eq!(view(&fast), view(&scalar), "simd diverges on {sentence:?}");
    }

    #[test]
    fn ascii_fast_path_matches_char_path_on_fixtures() {
        for s in [
            "",
            "   \t\n ",
            "We don't sell your e-mail address.",
            "query content://com.android.calendar now",
            "we won't share; they can't either, isn't it, 'tis",
            "visit https://example.com/a/b?q=1 or www.example.org today",
            "a_b __ c-d- e--f g-/h i:/j k://l 3.14 v1.2.3 com.example.app.",
            "don't DON'T DoN't n't 'n't won'tn't",
            "'s 're 'll ''' 'a1 x' trailing'",
            "punct!@#$%^&*()[]{}|\\<>~`+=",
        ] {
            assert_paths_agree(s);
        }
    }

    #[test]
    fn ascii_fast_path_matches_char_path_on_random_text() {
        // Seed-deterministic xorshift over a token-shaped alphabet.
        let mut state = 41u64;
        let mut next = move || {
            let mut x = state.wrapping_add(0x9e3779b97f4a7c15);
            state = x;
            x ^= x >> 30;
            x = x.wrapping_mul(0xbf58476d1ce4e5b9);
            x ^= x >> 27;
            x ^ (x >> 31)
        };
        const ALPHABET: &[u8] = b"abcNT '.-/:_09\t,;!?n't";
        for _ in 0..400 {
            let len = (next() % 60) as usize;
            let s: String =
                (0..len).map(|_| ALPHABET[(next() as usize) % ALPHABET.len()] as char).collect();
            assert_paths_agree(&s);
        }
    }
}
