//! A hand-built part-of-speech lexicon covering the privacy-policy register
//! of English, plus a suffix-based guesser for out-of-vocabulary words.
//!
//! The Stanford Parser used by the paper carries a statistical model; our
//! substitute is a closed lexicon (function words are a closed class anyway)
//! combined with morphological heuristics for open-class words, which is
//! sufficient for the constrained register privacy policies are written in.

use crate::token::Tag;
use std::collections::HashMap;
use std::sync::OnceLock;

/// Lexicon mapping lowercased word forms to their most likely tag.
#[derive(Debug)]
pub struct Lexicon {
    entries: HashMap<&'static str, Tag>,
}

/// Modal verbs (`MD`).
pub const MODALS: &[&str] = &[
    "will", "would", "can", "could", "may", "might", "must", "shall", "should", "wo", "ca",
];

/// Forms of "be" (used for passive-voice detection).
pub const BE_FORMS: &[&str] = &["be", "am", "is", "are", "was", "were", "been", "being"];

/// Forms of "have" used as auxiliaries.
pub const HAVE_FORMS: &[&str] = &["have", "has", "had", "having"];

/// Forms of "do" used as auxiliaries.
pub const DO_FORMS: &[&str] = &["do", "does", "did", "doing"];

/// Subordinating words that introduce constraints in privacy policies.
/// Pre-conditions per the paper: "if", "upon", "unless"; post-conditions:
/// "when", "before".
pub const SUBORDINATORS: &[&str] = &[
    "if", "when", "unless", "before", "after", "upon", "while", "until", "once", "whenever",
    "because", "although", "though", "since",
];

/// Personal pronouns.
pub const PRONOUNS: &[&str] = &[
    "we", "you", "they", "it", "i", "he", "she", "us", "them", "me", "him", "her", "itself",
    "themselves", "ourselves", "yourself", "anyone", "everyone", "nobody", "nothing", "someone",
    "something", "anything",
];

/// Possessive pronouns.
pub const POSS_PRONOUNS: &[&str] = &["your", "our", "their", "its", "my", "his", "her"];

/// Determiners, including negative determiner "no".
pub const DETERMINERS: &[&str] = &[
    "the", "a", "an", "this", "that", "these", "those", "no", "any", "some", "each", "every",
    "all", "both", "such", "another", "either", "neither", "certain", "other", "following",
];

/// Prepositions.
pub const PREPOSITIONS: &[&str] = &[
    "of", "in", "on", "at", "by", "for", "with", "about", "from", "into", "through", "during",
    "including", "against", "among", "throughout", "via", "within", "without", "regarding",
    "concerning", "per", "as", "like", "out", "off", "over", "under", "between", "to",
];

/// Coordinating conjunctions.
pub const CONJUNCTIONS: &[&str] = &["and", "or", "but", "nor", "plus"];

/// Wh-words.
pub const WH_WORDS: &[&str] = &[
    "which", "who", "whom", "whose", "what", "where", "why", "how", "whether", "that",
];

/// Verbs that matter to the pipeline, stored in base form. Inflected forms
/// are recognized through [`crate::lemma`].
pub const VERBS: &[&str] = &[
    // collect-category and friends
    "collect", "gather", "obtain", "acquire", "access", "receive", "record", "solicit", "get",
    "take", "capture", "request", "ask", "check", "know", "track", "monitor", "read", "scan",
    // use-category
    "use", "process", "utilize", "employ", "analyze", "combine", "connect", "link", "associate",
    "serve", "improve", "personalize", "customize", "operate", "deliver",
    // retain-category
    "retain", "store", "keep", "save", "preserve", "hold", "maintain", "archive", "cache",
    "remember", "log",
    // disclose-category
    "disclose", "share", "transfer", "provide", "send", "transmit", "give", "sell", "rent",
    "release", "reveal", "distribute", "report", "expose", "supply", "pass", "lease", "trade",
    "display", "show", "upload", "post", "publish",
    // general verbs seen in policies
    "agree", "allow", "permit", "enable", "require", "need", "want", "help", "make", "create",
    "delete", "remove", "protect", "secure", "encrypt", "review", "update", "change", "modify",
    "contact", "notify", "inform", "register", "sign", "visit", "browse", "download", "install",
    "uninstall", "open", "close", "click", "tap", "enter", "submit", "choose", "select",
    "prevent", "stop", "refuse", "decline", "deny", "opt", "consent", "comply", "apply",
    "include", "contain", "cover", "describe", "explain", "govern", "identify", "locate",
    "determine", "enhance", "measure", "offer", "support", "ensure", "limit", "restrict",
    "encourage", "respond", "occur", "happen", "work", "run", "play", "see", "view", "find",
    "learn", "understand", "believe", "think", "say", "state", "mention", "note", "write",
];

/// Nouns that matter to the pipeline (privacy resources, actors, etc.).
pub const NOUNS: &[&str] = &[
    // resources
    "information", "data", "location", "address", "name", "email", "e-mail", "phone", "number",
    "contact", "contacts", "calendar", "account", "accounts", "identifier", "id", "device",
    "cookie", "cookies", "ip", "camera", "photo", "photos", "picture", "pictures", "image",
    "images", "audio", "microphone", "voice", "video", "sms", "message", "messages", "text",
    "call", "calls", "history", "list", "apps", "app", "application", "applications",
    "latitude", "longitude", "gps", "birthday", "birthdate", "age", "gender", "password",
    "username", "profile", "preferences", "settings", "content", "contents", "file", "files",
    "log", "logs", "record", "records", "detail", "details", "imei", "imsi", "mac", "wifi",
    "network", "browser", "os", "carrier", "sim", "storage", "clipboard", "sensor", "sensors",
    // actors and misc
    "user", "users", "visitor", "visitors", "customer", "customers", "member", "members",
    "child", "children", "party", "parties", "company", "companies", "partner", "partners",
    "advertiser", "advertisers", "affiliate", "affiliates", "provider", "providers", "vendor",
    "vendors", "service", "services", "website", "websites", "site", "sites", "server",
    "servers", "policy", "policies", "privacy", "terms", "law", "laws", "regulation",
    "regulations", "consent", "permission", "permissions", "purpose", "purposes", "time",
    "period", "library", "libraries", "lib", "libs", "sdk", "analytics", "advertising",
    "advertisement", "advertisements", "ads", "ad", "game", "games", "feature", "features",
    "functionality", "security", "practice", "practices", "right", "rights", "option",
    "options", "question", "questions", "section", "page", "pages", "agreement", "notice",
    "identifiers", "friends", "field", "force", "way", "tasks", "task", "order", "experience",
    "quality", "basis", "internet",
];

/// Adjectives seen in policies.
pub const ADJECTIVES: &[&str] = &[
    "personal", "private", "sensitive", "personally", "identifiable", "anonymous", "aggregate",
    "aggregated", "technical", "mobile", "unique", "real", "actual", "third", "third-party",
    "necessary", "able", "unable", "responsible", "applicable", "available", "current",
    "precise", "approximate", "demographic", "financial", "medical", "geographic", "such",
    "certain", "other", "own", "new", "free", "optional", "legal", "specific", "general",
    "additional", "effective", "important", "relevant", "various", "non-personal", "online",
];

/// Adverbs, including negation markers the paper's Step 5 relies on.
pub const ADVERBS: &[&str] = &[
    "not", "n't", "never", "hardly", "rarely", "seldom", "no longer", "also", "only",
    "automatically", "directly", "indirectly", "always", "sometimes", "occasionally",
    "periodically", "solely", "generally", "typically", "specifically", "currently", "however",
    "therefore", "moreover", "furthermore", "additionally", "please", "again", "already",
    "together", "too", "very", "well", "then", "thus", "hereby", "herein", "instead",
];

impl Lexicon {
    fn build() -> Self {
        let mut entries = HashMap::new();
        // Order matters: later inserts win, so put the highest-priority
        // (closed) classes last.
        for &w in NOUNS {
            entries.insert(w, Tag::Noun);
        }
        for &w in VERBS {
            entries.insert(w, Tag::VerbBase);
        }
        for &w in ADJECTIVES {
            entries.insert(w, Tag::Adj);
        }
        for &w in ADVERBS {
            entries.insert(w, Tag::Adv);
        }
        for &w in WH_WORDS {
            entries.insert(w, Tag::Wh);
        }
        for &w in PREPOSITIONS {
            entries.insert(w, Tag::Prep);
        }
        for &w in SUBORDINATORS {
            entries.insert(w, Tag::Prep);
        }
        for &w in CONJUNCTIONS {
            entries.insert(w, Tag::Conj);
        }
        for &w in DETERMINERS {
            entries.insert(w, Tag::Det);
        }
        for &w in PRONOUNS {
            entries.insert(w, Tag::Pronoun);
        }
        for &w in POSS_PRONOUNS {
            entries.insert(w, Tag::PronounPoss);
        }
        for &w in MODALS {
            entries.insert(w, Tag::Modal);
        }
        for &w in BE_FORMS {
            entries.insert(w, Tag::VerbPres);
        }
        for &w in HAVE_FORMS {
            entries.insert(w, Tag::VerbPres);
        }
        for &w in DO_FORMS {
            entries.insert(w, Tag::VerbPres);
        }
        entries.insert("to", Tag::To);
        entries.insert("not", Tag::Adv);
        entries.insert("n't", Tag::Adv);
        Lexicon { entries }
    }

    /// Returns the process-wide shared lexicon.
    pub fn shared() -> &'static Lexicon {
        static LEX: OnceLock<Lexicon> = OnceLock::new();
        LEX.get_or_init(Lexicon::build)
    }

    /// Looks up a lowercased word form.
    pub fn lookup(&self, lower: &str) -> Option<Tag> {
        self.entries.get(lower).copied()
    }

    /// Returns `true` if the word (in any inflection) is a known verb.
    pub fn is_known_verb(&self, lower: &str) -> bool {
        if matches!(self.lookup(lower), Some(t) if t.is_verb()) {
            return true;
        }
        let lemma = crate::lemma::lemmatize_verb(lower);
        matches!(self.lookup(&lemma), Some(t) if t.is_verb())
    }

    /// Guesses the tag of an out-of-vocabulary word from its morphology.
    pub fn guess(&self, word: &str, lower: &str) -> Tag {
        if lower.chars().all(|c| c.is_ascii_digit() || c == '.' || c == ',') {
            return Tag::Num;
        }
        if word.chars().next().is_some_and(|c| c.is_uppercase()) {
            return Tag::NounProper;
        }
        if lower.ends_with("ly") {
            return Tag::Adv;
        }
        if lower.ends_with("ing") {
            return Tag::VerbGerund;
        }
        if lower.ends_with("ed") {
            return Tag::VerbPastPart;
        }
        if lower.ends_with("ous")
            || lower.ends_with("ful")
            || lower.ends_with("able")
            || lower.ends_with("ible")
            || lower.ends_with("ive")
            || lower.ends_with("al")
        {
            return Tag::Adj;
        }
        if lower.ends_with('s') && lower.len() > 3 && !lower.ends_with("ss") {
            return Tag::NounPlural;
        }
        Tag::Noun
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_class_lookup() {
        let lex = Lexicon::shared();
        assert_eq!(lex.lookup("will"), Some(Tag::Modal));
        assert_eq!(lex.lookup("your"), Some(Tag::PronounPoss));
        assert_eq!(lex.lookup("no"), Some(Tag::Det));
        assert_eq!(lex.lookup("to"), Some(Tag::To));
        assert_eq!(lex.lookup("and"), Some(Tag::Conj));
    }

    #[test]
    fn open_class_lookup() {
        let lex = Lexicon::shared();
        assert_eq!(lex.lookup("collect"), Some(Tag::VerbBase));
        assert_eq!(lex.lookup("location"), Some(Tag::Noun));
        assert_eq!(lex.lookup("personal"), Some(Tag::Adj));
    }

    #[test]
    fn suffix_guesser() {
        let lex = Lexicon::shared();
        assert_eq!(lex.guess("quickly", "quickly"), Tag::Adv);
        assert_eq!(lex.guess("syncing", "syncing"), Tag::VerbGerund);
        assert_eq!(lex.guess("harvested", "harvested"), Tag::VerbPastPart);
        assert_eq!(lex.guess("widgets", "widgets"), Tag::NounPlural);
        assert_eq!(lex.guess("Facebook", "facebook"), Tag::NounProper);
        assert_eq!(lex.guess("42", "42"), Tag::Num);
    }

    #[test]
    fn inflected_verbs_are_known() {
        let lex = Lexicon::shared();
        assert!(lex.is_known_verb("collects"));
        assert!(lex.is_known_verb("collected"));
        assert!(lex.is_known_verb("sharing"));
        assert!(lex.is_known_verb("kept"));
        assert!(!lex.is_known_verb("location"));
    }
}
