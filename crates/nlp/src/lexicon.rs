//! A hand-built part-of-speech lexicon covering the privacy-policy register
//! of English, plus a suffix-based guesser for out-of-vocabulary words.
//!
//! The Stanford Parser used by the paper carries a statistical model; our
//! substitute is a closed lexicon (function words are a closed class anyway)
//! combined with morphological heuristics for open-class words, which is
//! sufficient for the constrained register privacy policies are written in.

use crate::intern::{Interner, Symbol, SymbolSet};
use crate::token::Tag;
use std::collections::HashMap;
use std::sync::OnceLock;

/// Lexicon mapping lowercased word forms (as interned [`Symbol`]s) to
/// their most likely tag. Lookups hash a `u32`, not the word's bytes.
#[derive(Debug)]
pub struct Lexicon {
    entries: HashMap<Symbol, Tag>,
}

/// Modal verbs (`MD`).
pub const MODALS: &[&str] =
    &["will", "would", "can", "could", "may", "might", "must", "shall", "should", "wo", "ca"];

/// Forms of "be" (used for passive-voice detection).
pub const BE_FORMS: &[&str] = &["be", "am", "is", "are", "was", "were", "been", "being"];

/// Forms of "have" used as auxiliaries.
pub const HAVE_FORMS: &[&str] = &["have", "has", "had", "having"];

/// Forms of "do" used as auxiliaries.
pub const DO_FORMS: &[&str] = &["do", "does", "did", "doing"];

/// Subordinating words that introduce constraints in privacy policies.
/// Pre-conditions per the paper: "if", "upon", "unless"; post-conditions:
/// "when", "before".
pub const SUBORDINATORS: &[&str] = &[
    "if", "when", "unless", "before", "after", "upon", "while", "until", "once", "whenever",
    "because", "although", "though", "since",
];

/// Personal pronouns.
pub const PRONOUNS: &[&str] = &[
    "we",
    "you",
    "they",
    "it",
    "i",
    "he",
    "she",
    "us",
    "them",
    "me",
    "him",
    "her",
    "itself",
    "themselves",
    "ourselves",
    "yourself",
    "anyone",
    "everyone",
    "nobody",
    "nothing",
    "someone",
    "something",
    "anything",
];

/// Possessive pronouns.
pub const POSS_PRONOUNS: &[&str] = &["your", "our", "their", "its", "my", "his", "her"];

/// Determiners, including negative determiner "no".
pub const DETERMINERS: &[&str] = &[
    "the",
    "a",
    "an",
    "this",
    "that",
    "these",
    "those",
    "no",
    "any",
    "some",
    "each",
    "every",
    "all",
    "both",
    "such",
    "another",
    "either",
    "neither",
    "certain",
    "other",
    "following",
];

/// Prepositions.
pub const PREPOSITIONS: &[&str] = &[
    "of",
    "in",
    "on",
    "at",
    "by",
    "for",
    "with",
    "about",
    "from",
    "into",
    "through",
    "during",
    "including",
    "against",
    "among",
    "throughout",
    "via",
    "within",
    "without",
    "regarding",
    "concerning",
    "per",
    "as",
    "like",
    "out",
    "off",
    "over",
    "under",
    "between",
    "to",
];

/// Coordinating conjunctions.
pub const CONJUNCTIONS: &[&str] = &["and", "or", "but", "nor", "plus"];

/// Wh-words.
pub const WH_WORDS: &[&str] =
    &["which", "who", "whom", "whose", "what", "where", "why", "how", "whether", "that"];

/// Verbs that matter to the pipeline, stored in base form. Inflected forms
/// are recognized through [`crate::lemma`].
pub const VERBS: &[&str] = &[
    // collect-category and friends
    "collect",
    "gather",
    "obtain",
    "acquire",
    "access",
    "receive",
    "record",
    "solicit",
    "get",
    "take",
    "capture",
    "request",
    "ask",
    "check",
    "know",
    "track",
    "monitor",
    "read",
    "scan",
    // use-category
    "use",
    "process",
    "utilize",
    "employ",
    "analyze",
    "combine",
    "connect",
    "link",
    "associate",
    "serve",
    "improve",
    "personalize",
    "customize",
    "operate",
    "deliver",
    // retain-category
    "retain",
    "store",
    "keep",
    "save",
    "preserve",
    "hold",
    "maintain",
    "archive",
    "cache",
    "remember",
    "log",
    // disclose-category
    "disclose",
    "share",
    "transfer",
    "provide",
    "send",
    "transmit",
    "give",
    "sell",
    "rent",
    "release",
    "reveal",
    "distribute",
    "report",
    "expose",
    "supply",
    "pass",
    "lease",
    "trade",
    "display",
    "show",
    "upload",
    "post",
    "publish",
    // general verbs seen in policies
    "agree",
    "allow",
    "permit",
    "enable",
    "require",
    "need",
    "want",
    "help",
    "make",
    "create",
    "delete",
    "remove",
    "protect",
    "secure",
    "encrypt",
    "review",
    "update",
    "change",
    "modify",
    "contact",
    "notify",
    "inform",
    "register",
    "sign",
    "visit",
    "browse",
    "download",
    "install",
    "uninstall",
    "open",
    "close",
    "click",
    "tap",
    "enter",
    "submit",
    "choose",
    "select",
    "prevent",
    "stop",
    "refuse",
    "decline",
    "deny",
    "opt",
    "consent",
    "comply",
    "apply",
    "include",
    "contain",
    "cover",
    "describe",
    "explain",
    "govern",
    "identify",
    "locate",
    "determine",
    "enhance",
    "measure",
    "offer",
    "support",
    "ensure",
    "limit",
    "restrict",
    "encourage",
    "respond",
    "occur",
    "happen",
    "work",
    "run",
    "play",
    "see",
    "view",
    "find",
    "learn",
    "understand",
    "believe",
    "think",
    "say",
    "state",
    "mention",
    "note",
    "write",
];

/// Nouns that matter to the pipeline (privacy resources, actors, etc.).
pub const NOUNS: &[&str] = &[
    // resources
    "information",
    "data",
    "location",
    "address",
    "name",
    "email",
    "e-mail",
    "phone",
    "number",
    "contact",
    "contacts",
    "calendar",
    "account",
    "accounts",
    "identifier",
    "id",
    "device",
    "cookie",
    "cookies",
    "ip",
    "camera",
    "photo",
    "photos",
    "picture",
    "pictures",
    "image",
    "images",
    "audio",
    "microphone",
    "voice",
    "video",
    "sms",
    "message",
    "messages",
    "text",
    "call",
    "calls",
    "history",
    "list",
    "apps",
    "app",
    "application",
    "applications",
    "latitude",
    "longitude",
    "gps",
    "birthday",
    "birthdate",
    "age",
    "gender",
    "password",
    "username",
    "profile",
    "preferences",
    "settings",
    "content",
    "contents",
    "file",
    "files",
    "log",
    "logs",
    "record",
    "records",
    "detail",
    "details",
    "imei",
    "imsi",
    "mac",
    "wifi",
    "network",
    "browser",
    "os",
    "carrier",
    "sim",
    "storage",
    "clipboard",
    "sensor",
    "sensors",
    // actors and misc
    "user",
    "users",
    "visitor",
    "visitors",
    "customer",
    "customers",
    "member",
    "members",
    "child",
    "children",
    "party",
    "parties",
    "company",
    "companies",
    "partner",
    "partners",
    "advertiser",
    "advertisers",
    "affiliate",
    "affiliates",
    "provider",
    "providers",
    "vendor",
    "vendors",
    "service",
    "services",
    "website",
    "websites",
    "site",
    "sites",
    "server",
    "servers",
    "policy",
    "policies",
    "privacy",
    "terms",
    "law",
    "laws",
    "regulation",
    "regulations",
    "consent",
    "permission",
    "permissions",
    "purpose",
    "purposes",
    "time",
    "period",
    "library",
    "libraries",
    "lib",
    "libs",
    "sdk",
    "analytics",
    "advertising",
    "advertisement",
    "advertisements",
    "ads",
    "ad",
    "game",
    "games",
    "feature",
    "features",
    "functionality",
    "security",
    "practice",
    "practices",
    "right",
    "rights",
    "option",
    "options",
    "question",
    "questions",
    "section",
    "page",
    "pages",
    "agreement",
    "notice",
    "identifiers",
    "friends",
    "field",
    "force",
    "way",
    "tasks",
    "task",
    "order",
    "experience",
    "quality",
    "basis",
    "internet",
];

/// Adjectives seen in policies.
pub const ADJECTIVES: &[&str] = &[
    "personal",
    "private",
    "sensitive",
    "personally",
    "identifiable",
    "anonymous",
    "aggregate",
    "aggregated",
    "technical",
    "mobile",
    "unique",
    "real",
    "actual",
    "third",
    "third-party",
    "necessary",
    "able",
    "unable",
    "responsible",
    "applicable",
    "available",
    "current",
    "precise",
    "approximate",
    "demographic",
    "financial",
    "medical",
    "geographic",
    "such",
    "certain",
    "other",
    "own",
    "new",
    "free",
    "optional",
    "legal",
    "specific",
    "general",
    "additional",
    "effective",
    "important",
    "relevant",
    "various",
    "non-personal",
    "online",
];

/// Adverbs, including negation markers the paper's Step 5 relies on.
pub const ADVERBS: &[&str] = &[
    "not",
    "n't",
    "never",
    "hardly",
    "rarely",
    "seldom",
    "no longer",
    "also",
    "only",
    "automatically",
    "directly",
    "indirectly",
    "always",
    "sometimes",
    "occasionally",
    "periodically",
    "solely",
    "generally",
    "typically",
    "specifically",
    "currently",
    "however",
    "therefore",
    "moreover",
    "furthermore",
    "additionally",
    "please",
    "again",
    "already",
    "together",
    "too",
    "very",
    "well",
    "then",
    "thus",
    "hereby",
    "herein",
    "instead",
];

impl Lexicon {
    fn build() -> Self {
        let interner = Interner::global();
        let mut entries = HashMap::new();
        let mut insert_all = |words: &[&'static str], tag: Tag| {
            for &w in words {
                entries.insert(interner.intern_static(w), tag);
            }
        };
        // Order matters: later inserts win, so put the highest-priority
        // (closed) classes last.
        insert_all(NOUNS, Tag::Noun);
        insert_all(VERBS, Tag::VerbBase);
        insert_all(ADJECTIVES, Tag::Adj);
        insert_all(ADVERBS, Tag::Adv);
        insert_all(WH_WORDS, Tag::Wh);
        insert_all(PREPOSITIONS, Tag::Prep);
        insert_all(SUBORDINATORS, Tag::Prep);
        insert_all(CONJUNCTIONS, Tag::Conj);
        insert_all(DETERMINERS, Tag::Det);
        insert_all(PRONOUNS, Tag::Pronoun);
        insert_all(POSS_PRONOUNS, Tag::PronounPoss);
        insert_all(MODALS, Tag::Modal);
        insert_all(BE_FORMS, Tag::VerbPres);
        insert_all(HAVE_FORMS, Tag::VerbPres);
        insert_all(DO_FORMS, Tag::VerbPres);
        entries.insert(interner.intern_static("to"), Tag::To);
        entries.insert(interner.intern_static("not"), Tag::Adv);
        entries.insert(interner.intern_static("n't"), Tag::Adv);
        Lexicon { entries }
    }

    /// Returns the process-wide shared lexicon.
    pub fn shared() -> &'static Lexicon {
        static LEX: OnceLock<Lexicon> = OnceLock::new();
        LEX.get_or_init(Lexicon::build)
    }

    /// Looks up a lowercased word form by its symbol.
    pub fn lookup(&self, lower: Symbol) -> Option<Tag> {
        self.entries.get(&lower).copied()
    }

    /// Looks up a candidate string without interning it — misses (e.g. the
    /// lemmatizer probing restored stems) leave the interner untouched.
    pub fn lookup_str(&self, lower: &str) -> Option<Tag> {
        let sym = Interner::global().get(lower)?;
        self.lookup(sym)
    }

    /// Returns `true` if the word (in any inflection) is a known verb.
    pub fn is_known_verb(&self, lower: Symbol) -> bool {
        if matches!(self.lookup(lower), Some(t) if t.is_verb()) {
            return true;
        }
        let lemma = crate::lemma::lemmatize_verb_sym(lower);
        matches!(self.lookup(lemma), Some(t) if t.is_verb())
    }

    /// Guesses the tag of an out-of-vocabulary word from its morphology.
    pub fn guess(&self, word: &str, lower: &str) -> Tag {
        if lower.chars().all(|c| c.is_ascii_digit() || c == '.' || c == ',') {
            return Tag::Num;
        }
        if word.chars().next().is_some_and(|c| c.is_uppercase()) {
            return Tag::NounProper;
        }
        if lower.ends_with("ly") {
            return Tag::Adv;
        }
        if lower.ends_with("ing") {
            return Tag::VerbGerund;
        }
        if lower.ends_with("ed") {
            return Tag::VerbPastPart;
        }
        if lower.ends_with("ous")
            || lower.ends_with("ful")
            || lower.ends_with("able")
            || lower.ends_with("ible")
            || lower.ends_with("ive")
            || lower.ends_with("al")
        {
            return Tag::Adj;
        }
        if lower.ends_with('s') && lower.len() > 3 && !lower.ends_with("ss") {
            return Tag::NounPlural;
        }
        Tag::Noun
    }
}

fn set(cell: &'static OnceLock<SymbolSet>, words: &'static [&'static str]) -> &'static SymbolSet {
    cell.get_or_init(|| SymbolSet::new(words))
}

/// `true` if `sym` is a form of "be".
pub fn is_be_form(sym: Symbol) -> bool {
    static SET: OnceLock<SymbolSet> = OnceLock::new();
    set(&SET, BE_FORMS).contains(sym)
}

/// `true` if `sym` is an auxiliary form of "have".
pub fn is_have_form(sym: Symbol) -> bool {
    static SET: OnceLock<SymbolSet> = OnceLock::new();
    set(&SET, HAVE_FORMS).contains(sym)
}

/// `true` if `sym` is an auxiliary form of "do".
pub fn is_do_form(sym: Symbol) -> bool {
    static SET: OnceLock<SymbolSet> = OnceLock::new();
    set(&SET, DO_FORMS).contains(sym)
}

/// `true` if `sym` is a subordinating word ([`SUBORDINATORS`]).
pub fn is_subordinator(sym: Symbol) -> bool {
    static SET: OnceLock<SymbolSet> = OnceLock::new();
    set(&SET, SUBORDINATORS).contains(sym)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_class_lookup() {
        let lex = Lexicon::shared();
        assert_eq!(lex.lookup_str("will"), Some(Tag::Modal));
        assert_eq!(lex.lookup_str("your"), Some(Tag::PronounPoss));
        assert_eq!(lex.lookup_str("no"), Some(Tag::Det));
        assert_eq!(lex.lookup_str("to"), Some(Tag::To));
        assert_eq!(lex.lookup_str("and"), Some(Tag::Conj));
    }

    #[test]
    fn open_class_lookup() {
        let lex = Lexicon::shared();
        assert_eq!(lex.lookup_str("collect"), Some(Tag::VerbBase));
        assert_eq!(lex.lookup_str("location"), Some(Tag::Noun));
        assert_eq!(lex.lookup_str("personal"), Some(Tag::Adj));
        assert_eq!(lex.lookup(crate::intern::intern("collect")), Some(Tag::VerbBase));
    }

    #[test]
    fn symbol_word_class_sets() {
        use crate::intern::intern;
        assert!(is_be_form(intern("were")));
        assert!(!is_be_form(intern("collect")));
        assert!(is_have_form(intern("has")));
        assert!(is_do_form(intern("does")));
        assert!(is_subordinator(intern("unless")));
    }

    #[test]
    fn suffix_guesser() {
        let lex = Lexicon::shared();
        assert_eq!(lex.guess("quickly", "quickly"), Tag::Adv);
        assert_eq!(lex.guess("syncing", "syncing"), Tag::VerbGerund);
        assert_eq!(lex.guess("harvested", "harvested"), Tag::VerbPastPart);
        assert_eq!(lex.guess("widgets", "widgets"), Tag::NounPlural);
        assert_eq!(lex.guess("Facebook", "facebook"), Tag::NounProper);
        assert_eq!(lex.guess("42", "42"), Tag::Num);
    }

    #[test]
    fn inflected_verbs_are_known() {
        use crate::intern::intern;
        let lex = Lexicon::shared();
        assert!(lex.is_known_verb(intern("collects")));
        assert!(lex.is_known_verb(intern("collected")));
        assert!(lex.is_known_verb(intern("sharing")));
        assert!(lex.is_known_verb(intern("kept")));
        assert!(!lex.is_known_verb(intern("location")));
    }
}
