//! Lemmatization: mapping inflected forms back to their base form.
//!
//! The pipeline matches sentence verbs against the four main-verb categories
//! of the paper ($V_P^{collect}$ etc.), which are stored in base form; this
//! module undoes English inflection so that "collects", "collected" and
//! "collecting" all match "collect".
//!
//! The symbol entry points ([`lemmatize_verb_sym`], [`lemmatize_noun_sym`])
//! memoize form → lemma per distinct word, so in steady state a token's
//! lemma costs one `u32`-keyed map probe instead of suffix analysis and a
//! fresh `String`.

use crate::intern::{intern, Symbol};
use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

/// Irregular verb forms → base form.
const IRREGULAR_VERBS: &[(&str, &str)] = &[
    ("kept", "keep"),
    ("held", "hold"),
    ("sent", "send"),
    ("sold", "sell"),
    ("gave", "give"),
    ("given", "give"),
    ("took", "take"),
    ("taken", "take"),
    ("got", "get"),
    ("gotten", "get"),
    ("made", "make"),
    ("knew", "know"),
    ("known", "know"),
    ("saw", "see"),
    ("seen", "see"),
    ("found", "find"),
    ("read", "read"),
    ("wrote", "write"),
    ("written", "write"),
    ("said", "say"),
    ("thought", "think"),
    ("was", "be"),
    ("were", "be"),
    ("been", "be"),
    ("being", "be"),
    ("is", "be"),
    ("are", "be"),
    ("am", "be"),
    ("has", "have"),
    ("had", "have"),
    ("does", "do"),
    ("did", "do"),
    ("done", "do"),
    ("ran", "run"),
    ("left", "leave"),
    ("meant", "mean"),
    ("met", "meet"),
    ("paid", "pay"),
    ("understood", "understand"),
];

/// Irregular noun plurals → singular.
const IRREGULAR_NOUNS: &[(&str, &str)] = &[
    ("children", "child"),
    ("people", "person"),
    ("men", "man"),
    ("women", "woman"),
    ("parties", "party"),
    ("companies", "company"),
    ("policies", "policy"),
    ("libraries", "library"),
    ("histories", "history"),
    ("identities", "identity"),
    ("activities", "activity"),
    ("cookies", "cookie"),
    ("data", "data"),
    ("media", "media"),
    ("analytics", "analytics"),
    ("sms", "sms"),
    ("contacts", "contact"),
    ("address", "address"),
    ("addresses", "address"),
    ("preferences", "preference"),
    ("practices", "practice"),
    ("services", "service"),
    ("devices", "device"),
    ("messages", "message"),
    ("images", "image"),
    ("pages", "page"),
    ("purposes", "purpose"),
    ("gps", "gps"),
];

/// Words ending in "s" that are not plurals.
const S_FINAL_SINGULARS: &[&str] = &[
    "this",
    "its",
    "is",
    "was",
    "has",
    "does",
    "as",
    "us",
    "various",
    "previous",
    "plus",
    "address",
    "access",
    "process",
    "business",
    "wireless",
    "status",
    "basis",
    "analysis",
    "gps",
    "sms",
    "os",
    "ios",
    "iris",
    "diagnostics",
    "analytics",
];

/// Lemmatizes a (lowercased) verb form to its base form.
///
/// # Examples
///
/// ```
/// use ppchecker_nlp::lemma::lemmatize_verb;
/// assert_eq!(lemmatize_verb("collects"), "collect");
/// assert_eq!(lemmatize_verb("stored"), "store");
/// assert_eq!(lemmatize_verb("sharing"), "share");
/// assert_eq!(lemmatize_verb("kept"), "keep");
/// ```
pub fn lemmatize_verb(lower: &str) -> String {
    lemmatize_verb_impl(lower)
}

/// Symbol-keyed, memoized verb lemmatization.
pub fn lemmatize_verb_sym(lower: Symbol) -> Symbol {
    static MEMO: OnceLock<RwLock<HashMap<Symbol, Symbol>>> = OnceLock::new();
    memoized(MEMO.get_or_init(Default::default), lower, lemmatize_verb_impl)
}

/// Symbol-keyed, memoized noun lemmatization.
pub fn lemmatize_noun_sym(lower: Symbol) -> Symbol {
    static MEMO: OnceLock<RwLock<HashMap<Symbol, Symbol>>> = OnceLock::new();
    memoized(MEMO.get_or_init(Default::default), lower, lemmatize_noun_impl)
}

fn memoized(
    memo: &RwLock<HashMap<Symbol, Symbol>>,
    lower: Symbol,
    compute: fn(&str) -> String,
) -> Symbol {
    if let Some(&lemma) = memo.read().expect("lemma memo poisoned").get(&lower) {
        return lemma;
    }
    let computed = compute(lower.as_str());
    // Reuse the input symbol when the form is already its own lemma.
    let lemma = if computed == lower.as_str() { lower } else { intern(&computed) };
    memo.write().expect("lemma memo poisoned").insert(lower, lemma);
    lemma
}

fn lemmatize_verb_impl(lower: &str) -> String {
    if let Some(&(_, base)) = IRREGULAR_VERBS.iter().find(|(f, _)| *f == lower) {
        return base.to_string();
    }
    if let Some(stem) = lower.strip_suffix("ies") {
        if !stem.is_empty() {
            return format!("{stem}y");
        }
    }
    if let Some(stem) = lower.strip_suffix("ied") {
        if !stem.is_empty() {
            return format!("{stem}y");
        }
    }
    if let Some(stem) = lower.strip_suffix("ing") {
        if stem.len() >= 2 {
            return undouble_or_restore_e(stem, lower);
        }
    }
    if let Some(stem) = lower.strip_suffix("ed") {
        if stem.len() >= 2 {
            return undouble_or_restore_e(stem, lower);
        }
    }
    if let Some(stem) = lower.strip_suffix("es") {
        if stem.ends_with("ss")
            || stem.ends_with("sh")
            || stem.ends_with("ch")
            || stem.ends_with('x')
            || stem.ends_with('z')
        {
            return stem.to_string();
        }
    }
    if lower.ends_with('s')
        && !lower.ends_with("ss")
        && !S_FINAL_SINGULARS.contains(&lower)
        && lower.len() > 2
    {
        return lower[..lower.len() - 1].to_string();
    }
    lower.to_string()
}

/// Lemmatizes a (lowercased) noun form to its singular.
///
/// # Examples
///
/// ```
/// use ppchecker_nlp::lemma::lemmatize_noun;
/// assert_eq!(lemmatize_noun("locations"), "location");
/// assert_eq!(lemmatize_noun("parties"), "party");
/// assert_eq!(lemmatize_noun("address"), "address");
/// assert_eq!(lemmatize_noun("data"), "data");
/// ```
pub fn lemmatize_noun(lower: &str) -> String {
    lemmatize_noun_impl(lower)
}

fn lemmatize_noun_impl(lower: &str) -> String {
    if let Some(&(_, base)) = IRREGULAR_NOUNS.iter().find(|(f, _)| *f == lower) {
        return base.to_string();
    }
    if S_FINAL_SINGULARS.contains(&lower) {
        return lower.to_string();
    }
    if let Some(stem) = lower.strip_suffix("ies") {
        if stem.len() > 1 {
            return format!("{stem}y");
        }
    }
    if let Some(stem) = lower.strip_suffix("es") {
        if stem.ends_with("ss")
            || stem.ends_with("sh")
            || stem.ends_with("ch")
            || stem.ends_with('x')
        {
            return stem.to_string();
        }
    }
    if lower.ends_with('s') && !lower.ends_with("ss") && lower.len() > 3 {
        return lower[..lower.len() - 1].to_string();
    }
    lower.to_string()
}

/// After stripping `-ed`/`-ing`: undo consonant doubling ("stopped" →
/// "stop") or restore a dropped final "e" ("stored" → "store").
fn undouble_or_restore_e(stem: &str, original: &str) -> String {
    if stem.is_empty() {
        return original.to_string();
    }
    let chars: Vec<char> = stem.chars().collect();
    let n = chars.len();
    // Doubled final consonant: "stopp" -> "stop", but keep "ss"/"ll" words
    // like "access"/"sell" intact only when the base is known that way.
    if n >= 3
        && chars[n - 1] == chars[n - 2]
        && !matches!(chars[n - 1], 'a' | 'e' | 'i' | 'o' | 'u' | 's' | 'l')
    {
        return stem[..stem.len() - 1].to_string();
    }
    // Known verb as-is? (`lookup_str` probes without interning, so the
    // candidate stems below never pollute the interner.)
    let lex = crate::lexicon::Lexicon::shared();
    if lex.lookup_str(stem).is_some_and(|t| t.is_verb()) {
        return stem.to_string();
    }
    // Try restoring "e": "stor" -> "store", "shar" -> "share".
    let with_e = format!("{stem}e");
    if lex.lookup_str(&with_e).is_some_and(|t| t.is_verb()) {
        return with_e;
    }
    // Heuristic: consonant + single vowel + consonant often dropped an "e"
    // if the word isn't known; default to the bare stem.
    stem.to_string()
}

/// The lemma tables' vocabulary (both inflected and base forms), fed into
/// the global interner's static pre-seed.
pub(crate) fn preseed_lemma_vocabulary() -> impl Iterator<Item = &'static str> {
    IRREGULAR_VERBS
        .iter()
        .chain(IRREGULAR_NOUNS.iter())
        .flat_map(|&(form, base)| [form, base])
        .chain(S_FINAL_SINGULARS.iter().copied())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verb_regular_s() {
        assert_eq!(lemmatize_verb("collects"), "collect");
        assert_eq!(lemmatize_verb("shares"), "share");
        assert_eq!(lemmatize_verb("uses"), "use");
    }

    #[test]
    fn verb_ed_restores_e() {
        assert_eq!(lemmatize_verb("stored"), "store");
        assert_eq!(lemmatize_verb("shared"), "share");
        assert_eq!(lemmatize_verb("used"), "use");
        assert_eq!(lemmatize_verb("disclosed"), "disclose");
    }

    #[test]
    fn verb_ing() {
        assert_eq!(lemmatize_verb("collecting"), "collect");
        assert_eq!(lemmatize_verb("storing"), "store");
        assert_eq!(lemmatize_verb("gathering"), "gather");
    }

    #[test]
    fn verb_irregulars() {
        assert_eq!(lemmatize_verb("kept"), "keep");
        assert_eq!(lemmatize_verb("sold"), "sell");
        assert_eq!(lemmatize_verb("given"), "give");
        assert_eq!(lemmatize_verb("was"), "be");
    }

    #[test]
    fn verb_doubled_consonant() {
        assert_eq!(lemmatize_verb("submitted"), "submit");
        assert_eq!(lemmatize_verb("logged"), "log");
    }

    #[test]
    fn noun_plurals() {
        assert_eq!(lemmatize_noun("locations"), "location");
        assert_eq!(lemmatize_noun("companies"), "company");
        assert_eq!(lemmatize_noun("children"), "child");
        assert_eq!(lemmatize_noun("addresses"), "address");
    }

    #[test]
    fn noun_non_plurals_unchanged() {
        assert_eq!(lemmatize_noun("gps"), "gps");
        assert_eq!(lemmatize_noun("sms"), "sms");
        assert_eq!(lemmatize_noun("access"), "access");
        assert_eq!(lemmatize_noun("data"), "data");
    }

    #[test]
    fn verb_y_inflection() {
        assert_eq!(lemmatize_verb("carries"), "carry");
        assert_eq!(lemmatize_verb("applies"), "apply");
    }

    #[test]
    fn symbol_lemmatization_matches_string_path() {
        for w in ["collects", "stored", "sharing", "kept", "data", "was"] {
            assert_eq!(lemmatize_verb_sym(intern(w)).as_str(), lemmatize_verb(w));
        }
        for w in ["locations", "companies", "children", "addresses", "gps"] {
            assert_eq!(lemmatize_noun_sym(intern(w)).as_str(), lemmatize_noun(w));
        }
    }

    #[test]
    fn uninflected_form_reuses_symbol() {
        let sym = intern("collect");
        assert_eq!(lemmatize_verb_sym(sym), sym);
        // Memoized second call returns the identical symbol.
        assert_eq!(lemmatize_verb_sym(sym), sym);
    }
}
