//! Rule-based part-of-speech tagging with Brill-style contextual repair.

use crate::lemma::{lemmatize_noun_sym, lemmatize_verb, lemmatize_verb_sym};
use crate::lexicon::{self, Lexicon, BE_FORMS, DO_FORMS, HAVE_FORMS};
use crate::token::{Tag, Token};

/// Tags every token in place (assigning [`Token::tag`] and [`Token::lemma`]).
///
/// The tagger looks up each word in the [`Lexicon`], falls back to
/// inflection analysis (a word whose lemma is a known verb is tagged as the
/// matching verb form), then to suffix guessing, and finally applies
/// contextual repair rules (e.g. a noun/verb-ambiguous word after a modal is
/// a verb; after a determiner it is a noun).
///
/// # Examples
///
/// ```
/// use ppchecker_nlp::{token::tokenize, tagger::tag, token::Tag};
/// let mut toks = tokenize("we will collect your location");
/// tag(&mut toks);
/// assert_eq!(toks[2].tag, Tag::VerbBase);
/// assert_eq!(toks[4].tag, Tag::Noun);
/// ```
pub fn tag(tokens: &mut [Token]) {
    let _span = ppchecker_obs::span!("nlp.tag");
    let lex = Lexicon::shared();
    for tok in tokens.iter_mut() {
        tok.tag = initial_tag(lex, tok);
        tok.lemma = match tok.tag {
            t if t.is_verb() => lemmatize_verb_sym(tok.lower),
            Tag::Noun | Tag::NounPlural => lemmatize_noun_sym(tok.lower),
            _ => tok.lower,
        };
    }
    contextual_repair(tokens);
    // Re-lemmatize tokens whose tag changed during repair.
    for tok in tokens.iter_mut() {
        if tok.tag.is_verb() {
            tok.lemma = lemmatize_verb_sym(tok.lower);
        } else if matches!(tok.tag, Tag::Noun | Tag::NounPlural) {
            tok.lemma = lemmatize_noun_sym(tok.lower);
        }
    }
}

fn initial_tag(lex: &Lexicon, tok: &Token) -> Tag {
    if tok.is_punct() {
        return Tag::Punct;
    }
    if let Some(t) = lex.lookup(tok.lower) {
        return refine_verb_form(tok.lower(), t);
    }
    // Inflected form of a known word?
    let vlemma = lemmatize_verb_sym(tok.lower);
    if vlemma != tok.lower && lex.lookup(vlemma).is_some_and(|t| t.is_verb()) {
        return inflected_verb_tag(tok.lower());
    }
    let nlemma = lemmatize_noun_sym(tok.lower);
    if nlemma != tok.lower && lex.lookup(nlemma).is_some_and(|t| t.is_nominal() || t == Tag::Noun) {
        return Tag::NounPlural;
    }
    lex.guess(tok.text(), tok.lower())
}

/// For base-form lexicon hits, work out the actual inflection of this form.
fn refine_verb_form(lower: &str, base_tag: Tag) -> Tag {
    if base_tag != Tag::VerbBase {
        return base_tag;
    }
    inflected_verb_tag(lower)
}

fn inflected_verb_tag(lower: &str) -> Tag {
    if BE_FORMS.contains(&lower) || HAVE_FORMS.contains(&lower) || DO_FORMS.contains(&lower) {
        return Tag::VerbPres;
    }
    if lower.ends_with("ing") {
        Tag::VerbGerund
    } else if lower.ends_with("ed")
        || matches!(
            lower,
            "kept"
                | "held"
                | "sent"
                | "sold"
                | "given"
                | "taken"
                | "known"
                | "seen"
                | "written"
                | "done"
                | "gotten"
                | "made"
                | "found"
                | "paid"
                | "meant"
                | "met"
                | "left"
                | "understood"
        )
    {
        Tag::VerbPastPart
    } else if lower.ends_with('s') && !lower.ends_with("ss") && lemmatize_verb(lower) != lower {
        Tag::Verb3sg
    } else {
        Tag::VerbBase
    }
}

/// Contextual repair rules applied left-to-right.
fn contextual_repair(tokens: &mut [Token]) {
    let n = tokens.len();
    for i in 0..n {
        let cur = tokens[i].tag;
        let prev = if i > 0 { Some(tokens[i - 1].tag) } else { None };
        let prev_lower = if i > 0 { Some(tokens[i - 1].lower) } else { None };

        // Rule: after "to", an ambiguous word is a base-form verb
        // ("to collect"), unless it heads a noun phrase ("to third parties").
        if prev == Some(Tag::To)
            && matches!(cur, Tag::Noun | Tag::Verb3sg | Tag::VerbPres | Tag::VerbPast)
            && Lexicon::shared().is_known_verb(tokens[i].lower)
        {
            tokens[i].tag = Tag::VerbBase;
            continue;
        }

        // Rule: after a modal (possibly with intervening adverbs), a
        // verb/noun-ambiguous word is a base verb ("may use", "will not
        // share", "may harvest") — even for out-of-vocabulary words, which
        // is how bootstrapping discovers new verbs.
        if matches!(cur, Tag::Noun | Tag::NounPlural | Tag::Verb3sg | Tag::Adj) {
            let mut j = i;
            while j > 0 && tokens[j - 1].tag == Tag::Adv {
                j -= 1;
            }
            if j > 0 && tokens[j - 1].tag == Tag::Modal {
                tokens[i].tag = Tag::VerbBase;
                continue;
            }
        }

        // Rule: a base-form verb directly after a non-auxiliary verb is
        // really a noun ("have access", "make use").
        if cur == Tag::VerbBase
            && !lexicon::is_be_form(tokens[i].lower)
            && prev.is_some_and(|p| p.is_verb())
            && prev_lower.is_some_and(|w| !lexicon::is_be_form(w) && !lexicon::is_do_form(w))
        {
            tokens[i].tag = Tag::Noun;
            continue;
        }

        // Rule: determiner/possessive/adjective before a verb-tagged word
        // makes it a noun ("your use of the app", "the share").
        if cur.is_verb()
            && cur != Tag::VerbGerund
            && matches!(prev, Some(Tag::Det) | Some(Tag::PronounPoss) | Some(Tag::Adj))
        {
            let lower = tokens[i].lower();
            tokens[i].tag = if lower.ends_with('s') && !lower.ends_with("ss") {
                Tag::NounPlural
            } else {
                Tag::Noun
            };
            continue;
        }

        // Rule: pronoun subject directly before a base/plural-ambiguous word
        // makes it a present-tense verb ("we collect", "we harvest" — OOV
        // words included so bootstrapping can discover new verbs).
        if matches!(cur, Tag::Noun | Tag::NounPlural | Tag::VerbBase) && prev == Some(Tag::Pronoun)
        {
            tokens[i].tag =
                if tokens[i].lower().ends_with('s') { Tag::Verb3sg } else { Tag::VerbPres };
            continue;
        }

        // Rule: a VBN directly after a form of "have" stays VBN; after a
        // noun it is likely a reduced relative; after "be" it stays VBN
        // (passive). A VBD/VBN ambiguous "-ed" after a pronoun/noun subject
        // with no auxiliary is past tense.
        if cur == Tag::VerbPastPart {
            let aux_before = prev_lower
                .is_some_and(|w| lexicon::is_be_form(w) || lexicon::is_have_form(w))
                || prev == Some(Tag::Adv) && i >= 2 && {
                    let w = tokens[i - 2].lower;
                    lexicon::is_be_form(w) || lexicon::is_have_form(w)
                };
            if !aux_before
                && matches!(
                    prev,
                    Some(Tag::Pronoun)
                        | Some(Tag::Noun)
                        | Some(Tag::NounPlural)
                        | Some(Tag::NounProper)
                )
            {
                tokens[i].tag = Tag::VerbPast;
                continue;
            }
        }

        // Rule: gerund directly before a noun acts as an adjective-like
        // modifier ("operating system", "advertising partners") — retag as
        // Adj so NP chunking includes it.
        if cur == Tag::VerbGerund
            && i + 1 < n
            && tokens[i + 1].tag.is_nominal()
            && prev != Some(Tag::Modal)
            && !prev_lower.is_some_and(lexicon::is_be_form)
        {
            tokens[i].tag = Tag::Adj;
            continue;
        }
    }
}

/// Convenience: tokenize then tag, returning the tagged tokens.
///
/// # Examples
///
/// ```
/// use ppchecker_nlp::tagger::tag_str;
/// let toks = tag_str("Your personal information will be used.");
/// assert!(toks.iter().any(|t| t.lemma() == "use"));
/// ```
pub fn tag_str(sentence: &str) -> Vec<Token> {
    let mut toks = crate::token::tokenize(sentence);
    tag(&mut toks);
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tags(s: &str) -> Vec<Tag> {
        tag_str(s).into_iter().map(|t| t.tag).collect()
    }

    #[test]
    fn simple_active_sentence() {
        let t = tags("we will collect your location");
        assert_eq!(t, vec![Tag::Pronoun, Tag::Modal, Tag::VerbBase, Tag::PronounPoss, Tag::Noun]);
    }

    #[test]
    fn passive_sentence() {
        let toks = tag_str("your personal information will be used");
        assert_eq!(toks.last().unwrap().tag, Tag::VerbPastPart);
        assert_eq!(toks.last().unwrap().lemma(), "use");
    }

    #[test]
    fn noun_after_determiner_not_verb() {
        let toks = tag_str("the use of your data");
        assert_eq!(toks[1].tag, Tag::Noun);
    }

    #[test]
    fn verb_after_pronoun() {
        let toks = tag_str("we collect information");
        assert_eq!(toks[1].tag, Tag::VerbPres);
        assert_eq!(toks[1].lemma(), "collect");
    }

    #[test]
    fn third_person_singular() {
        let toks = tag_str("it collects your device id");
        assert_eq!(toks[1].tag, Tag::Verb3sg);
        assert_eq!(toks[1].lemma(), "collect");
    }

    #[test]
    fn infinitive_after_to() {
        let toks = tag_str("we are able to access your contacts");
        let access = toks.iter().find(|t| t.lower() == "access").unwrap();
        assert_eq!(access.tag, Tag::VerbBase);
    }

    #[test]
    fn negation_tokens_are_adverbs() {
        let toks = tag_str("we will not collect data");
        assert_eq!(toks[2].tag, Tag::Adv);
        let toks = tag_str("we don't sell data");
        assert!(toks.iter().any(|t| t.lower() == "n't" && t.tag == Tag::Adv));
    }

    #[test]
    fn modal_then_adverb_then_verb() {
        let toks = tag_str("we will never share your contacts");
        let share = toks.iter().find(|t| t.lower() == "share").unwrap();
        assert_eq!(share.tag, Tag::VerbBase);
    }

    #[test]
    fn lemmas_assigned() {
        let toks = tag_str("we stored your contacts");
        assert_eq!(toks[1].lemma(), "store");
        assert_eq!(toks[3].lemma(), "contact");
    }
}

#[cfg(test)]
mod rule_tests {
    use super::*;

    fn tag_of(sentence: &str, word: &str) -> Tag {
        tag_str(sentence)
            .into_iter()
            .find(|t| t.lower() == word)
            .unwrap_or_else(|| panic!("{word} not in {sentence}"))
            .tag
    }

    #[test]
    fn oov_verb_after_modal_becomes_verb() {
        assert_eq!(tag_of("we may zorble your data", "zorble"), Tag::VerbBase);
    }

    #[test]
    fn adjective_after_modal_becomes_verb() {
        // "aggregate" is lexicon-adjective but verbal after a modal.
        assert_eq!(tag_of("we may aggregate your data", "aggregate"), Tag::VerbBase);
    }

    #[test]
    fn adjective_after_be_stays_adjective() {
        assert_eq!(tag_of("we are able to help", "able"), Tag::Adj);
    }

    #[test]
    fn noun_after_have_not_verb() {
        assert_eq!(tag_of("we have access to data", "access"), Tag::Noun);
        assert_eq!(tag_of("we make use of data", "use"), Tag::Noun);
    }

    #[test]
    fn vbn_after_have_stays_participle() {
        assert_eq!(tag_of("we have collected your data", "collected"), Tag::VerbPastPart);
    }

    #[test]
    fn gerund_before_noun_is_modifier() {
        // "operating" is OOV, suffix-guessed as a gerund, then repaired to
        // an adjective-like modifier before the noun.
        assert_eq!(tag_of("the operating system is fast", "operating"), Tag::Adj);
    }

    #[test]
    fn gerund_after_be_stays_verbal() {
        assert_eq!(tag_of("we are collecting your data", "collecting"), Tag::VerbGerund);
    }

    #[test]
    fn past_tense_after_subject_without_aux() {
        assert_eq!(tag_of("we collected your data", "collected"), Tag::VerbPast);
    }

    #[test]
    fn determiner_blocks_verb_reading() {
        assert_eq!(tag_of("review the collect statistics page", "collect"), Tag::Noun);
    }
}
