//! The string-interning layer the whole text pipeline flows through.
//!
//! Every word, lemma and resource phrase the pipeline touches is stored
//! once in a process-wide [`Interner`] and handled as a [`Symbol`] — a
//! `Copy` `u32` handle. Equality, hashing and set membership on symbols are
//! integer operations; the text is recovered with [`Symbol::as_str`], which
//! returns `&'static str` because interned storage is never freed.
//!
//! The global interner starts from a *pre-seeded static table* covering the
//! closed vocabulary the pipeline consults on every sentence — the lexicon
//! word classes, the verb-category lists, the synonym list, the negation
//! markers and the sensitive-resource phrases — so steady-state analysis
//! interns (and allocates) only for genuinely novel words. Everything else
//! goes into the dynamic table, which grows monotonically for the life of
//! the process (see DESIGN.md §9 for the lifetime rules).

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{OnceLock, RwLock};

/// An interned string handle. `Copy`, 4 bytes, order-stable within one
/// process run (symbols compare by interning order, not alphabetically).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The raw index into the global interner's table.
    pub fn id(self) -> u32 {
        self.0
    }

    /// Resolves the symbol through the global interner.
    pub fn as_str(self) -> &'static str {
        Interner::global().resolve(self)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<Symbol> for &str {
    fn eq(&self, other: &Symbol) -> bool {
        *self == other.as_str()
    }
}

#[derive(Default)]
struct Inner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

/// Counters describing the interner's occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InternerStats {
    /// Total distinct symbols, including the pre-seeded table.
    pub symbols: usize,
    /// Symbols installed by the static pre-seed at initialization.
    pub preseeded: usize,
    /// Total bytes of interned text.
    pub bytes: usize,
    /// The soft occupancy cap, in bytes of interned text.
    pub soft_cap_bytes: usize,
    /// Whether occupancy has crossed the soft cap. Interning still works
    /// past the cap (symbols are load-bearing for correctness), but a
    /// long-lived process should treat this as an operational warning —
    /// something is feeding unbounded novel vocabulary (see
    /// [`Interner::over_cap_interns`]).
    pub over_soft_cap: bool,
}

/// Default soft cap on interned text: 64 MiB. The steady-state pipeline
/// interns only genuinely novel words, so a week-long daemon crossing
/// this is a signal (adversarial vocabulary, unbounded corpus churn),
/// not normal growth — corpus runs sit around a few MiB.
pub const DEFAULT_INTERN_SOFT_CAP_BYTES: usize = 64 * 1024 * 1024;

/// A thread-safe append-only string interner.
///
/// Interned text is leaked (for dynamic strings) or borrowed from rodata
/// (for the pre-seeded vocabulary), so resolution hands out `&'static str`
/// without holding any lock beyond the lookup itself.
pub struct Interner {
    inner: RwLock<Inner>,
    preseeded: usize,
    bytes: AtomicUsize,
    soft_cap_bytes: AtomicUsize,
    over_cap_interns: AtomicUsize,
    warned: AtomicBool,
}

impl Interner {
    /// An empty interner (tests only; production code uses [`global`]).
    ///
    /// [`global`]: Interner::global
    pub fn new() -> Self {
        Interner {
            inner: RwLock::new(Inner::default()),
            preseeded: 0,
            bytes: AtomicUsize::new(0),
            soft_cap_bytes: AtomicUsize::new(DEFAULT_INTERN_SOFT_CAP_BYTES),
            over_cap_interns: AtomicUsize::new(0),
            warned: AtomicBool::new(false),
        }
    }

    /// The process-wide interner, pre-seeded with the pipeline vocabulary.
    pub fn global() -> &'static Interner {
        static GLOBAL: OnceLock<Interner> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let mut interner = Interner::new();
            {
                let inner = interner.inner.get_mut().expect("fresh lock");
                let mut bytes = 0;
                for word in preseed_vocabulary() {
                    if !inner.map.contains_key(word) {
                        let id = inner.strings.len() as u32;
                        inner.strings.push(word);
                        inner.map.insert(word, id);
                        bytes += word.len();
                    }
                }
                interner.preseeded = inner.strings.len();
                *interner.bytes.get_mut() = bytes;
            }
            interner
        })
    }

    /// Interns `s`, copying it into leaked storage on first sight.
    pub fn intern(&self, s: &str) -> Symbol {
        if let Some(&id) = self.inner.read().expect("interner poisoned").map.get(s) {
            return Symbol(id);
        }
        let mut inner = self.inner.write().expect("interner poisoned");
        if let Some(&id) = inner.map.get(s) {
            return Symbol(id);
        }
        let stored: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = inner.strings.len() as u32;
        inner.strings.push(stored);
        inner.map.insert(stored, id);
        drop(inner);
        self.account(stored.len());
        Symbol(id)
    }

    /// Interns a string that is already `'static`, without copying.
    pub fn intern_static(&self, s: &'static str) -> Symbol {
        if let Some(&id) = self.inner.read().expect("interner poisoned").map.get(s) {
            return Symbol(id);
        }
        let mut inner = self.inner.write().expect("interner poisoned");
        if let Some(&id) = inner.map.get(s) {
            return Symbol(id);
        }
        let id = inner.strings.len() as u32;
        inner.strings.push(s);
        inner.map.insert(s, id);
        drop(inner);
        self.account(s.len());
        Symbol(id)
    }

    /// Books `len` freshly interned bytes against the soft cap: past it,
    /// each further intern counts (for `/metrics`-style scrapes) and the
    /// first crossing logs one warning. Interning itself never fails —
    /// symbols are identity, not cache — the cap exists so a week-long
    /// daemon surfaces unbounded vocabulary growth *before* it OOMs
    /// instead of inside the allocator.
    fn account(&self, len: usize) {
        let total = self.bytes.fetch_add(len, Ordering::Relaxed) + len;
        let cap = self.soft_cap_bytes.load(Ordering::Relaxed);
        if cap > 0 && total > cap {
            self.over_cap_interns.fetch_add(1, Ordering::Relaxed);
            if !self.warned.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "warning: interner occupancy {total} bytes crossed the soft cap \
                     ({cap} bytes); novel vocabulary is accumulating without bound"
                );
            }
        }
    }

    /// Overrides the soft occupancy cap (`0` disables the warning).
    pub fn set_soft_cap_bytes(&self, cap: usize) {
        self.soft_cap_bytes.store(cap, Ordering::Relaxed);
    }

    /// Interns recorded after occupancy crossed the soft cap.
    pub fn over_cap_interns(&self) -> usize {
        self.over_cap_interns.load(Ordering::Relaxed)
    }

    /// Looks up `s` without interning it on a miss. Use this on paths that
    /// probe candidate strings (lemmatizer stem restoration, unknown-verb
    /// checks) so junk candidates never enter the table.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.inner.read().expect("interner poisoned").map.get(s).map(|&id| Symbol(id))
    }

    /// The text of `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` did not come from this interner.
    pub fn resolve(&self, sym: Symbol) -> &'static str {
        self.inner.read().expect("interner poisoned").strings[sym.0 as usize]
    }

    /// Current occupancy counters.
    pub fn stats(&self) -> InternerStats {
        let symbols = self.inner.read().expect("interner poisoned").strings.len();
        let bytes = self.bytes.load(Ordering::Relaxed);
        let soft_cap_bytes = self.soft_cap_bytes.load(Ordering::Relaxed);
        InternerStats {
            symbols,
            preseeded: self.preseeded,
            bytes,
            soft_cap_bytes,
            over_soft_cap: soft_cap_bytes > 0 && bytes > soft_cap_bytes,
        }
    }
}

impl Default for Interner {
    fn default() -> Self {
        Interner::new()
    }
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        f.debug_struct("Interner")
            .field("symbols", &stats.symbols)
            .field("preseeded", &stats.preseeded)
            .finish()
    }
}

/// Interns through the global interner.
pub fn intern(s: &str) -> Symbol {
    Interner::global().intern(s)
}

/// Resolves through the global interner.
pub fn resolve(sym: Symbol) -> &'static str {
    Interner::global().resolve(sym)
}

/// A small sorted symbol set for closed word classes. Membership is a
/// binary search over `u32`s — no hashing, no string comparison.
#[derive(Debug, Clone)]
pub struct SymbolSet {
    syms: Vec<Symbol>,
}

impl SymbolSet {
    /// Interns every word and builds the sorted set.
    pub fn new(words: &[&'static str]) -> Self {
        let interner = Interner::global();
        let mut syms: Vec<Symbol> = words.iter().map(|w| interner.intern_static(w)).collect();
        syms.sort_unstable();
        syms.dedup();
        SymbolSet { syms }
    }

    /// Membership test.
    pub fn contains(&self, sym: Symbol) -> bool {
        self.syms.binary_search(&sym).is_ok()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.syms.len()
    }

    /// `true` when the set has no members.
    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }
}

/// The sensitive-resource vocabulary: the canonical phrases of the paper's
/// private-information taxonomy (kept in sync with
/// `ppchecker_apk::PrivateInfo::canonical_phrase`) plus the multi-word
/// resource phrases the synthetic corpus and detectors compare against.
pub const SENSITIVE_RESOURCES: &[&str] = &[
    "location",
    "device id",
    "phone number",
    "ip address",
    "cookie",
    "account",
    "contact",
    "calendar",
    "camera",
    "audio",
    "app list",
    "sms",
    "call log",
    "browsing history",
    "sensor",
    "bluetooth",
    "carrier",
    "clipboard",
    "email address",
    "name",
    "birthday",
    // frequent policy-side surface forms of the same resources
    "personal information",
    "location information",
    "location data",
    "contacts",
    "cookies",
    "e-mail address",
    "device identifier",
    "usage data",
    "information",
    "data",
];

/// Everything installed into the global interner's static table.
fn preseed_vocabulary() -> impl Iterator<Item = &'static str> {
    use crate::lexicon;
    let word_classes = [
        lexicon::MODALS,
        lexicon::BE_FORMS,
        lexicon::HAVE_FORMS,
        lexicon::DO_FORMS,
        lexicon::SUBORDINATORS,
        lexicon::PRONOUNS,
        lexicon::POSS_PRONOUNS,
        lexicon::DETERMINERS,
        lexicon::PREPOSITIONS,
        lexicon::CONJUNCTIONS,
        lexicon::WH_WORDS,
        lexicon::VERBS,
        lexicon::NOUNS,
        lexicon::ADJECTIVES,
        lexicon::ADVERBS,
    ];
    let punct: &[&'static str] =
        &[".", ",", ";", ":", "!", "?", "'", "\"", "(", ")", "-", "/", "to", "n't", "'s"];
    word_classes
        .into_iter()
        .flatten()
        .copied()
        .chain(crate::lemma::preseed_lemma_vocabulary())
        .chain(SENSITIVE_RESOURCES.iter().copied())
        .chain(punct.iter().copied())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = intern("collect");
        let b = intern("collect");
        assert_eq!(a, b);
        assert_eq!(resolve(a), "collect");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        assert_ne!(intern("alpha-unique-x"), intern("beta-unique-y"));
    }

    #[test]
    fn roundtrip_both_ways() {
        let s = "some dynamic phrase";
        let sym = intern(s);
        assert_eq!(resolve(sym), s);
        assert_eq!(intern(resolve(sym)), sym);
    }

    #[test]
    fn preseeded_vocabulary_is_present_without_interning() {
        let g = Interner::global();
        assert!(g.get("collect").is_some());
        assert!(g.get("location").is_some());
        assert!(g.get("device id").is_some());
        assert!(g.get("not").is_some());
        assert!(g.get("zorble-never-seen").is_none());
    }

    #[test]
    fn get_does_not_intern() {
        let g = Interner::global();
        let before = g.stats().symbols;
        assert!(g.get("candidate-stem-miss").is_none());
        assert_eq!(g.stats().symbols, before);
    }

    #[test]
    fn stats_count_preseed() {
        let stats = Interner::global().stats();
        assert!(stats.preseeded > 400, "preseed covers the lexicon");
        assert!(stats.symbols >= stats.preseeded);
        assert!(stats.bytes > 0);
    }

    #[test]
    fn symbol_set_membership() {
        let set = SymbolSet::new(&["be", "am", "is", "are"]);
        assert!(set.contains(intern("is")));
        assert!(!set.contains(intern("collect")));
        assert_eq!(set.len(), 4);
        assert!(!set.is_empty());
    }

    #[test]
    fn display_resolves() {
        assert_eq!(intern("location").to_string(), "location");
    }

    #[test]
    fn soft_cap_warns_without_refusing() {
        let local = Interner::new();
        local.set_soft_cap_bytes(8);
        let a = local.intern("four");
        assert!(!local.stats().over_soft_cap);
        assert_eq!(local.over_cap_interns(), 0);
        let b = local.intern("crosses-the-cap");
        // Interning still works past the cap; the stats flag flips.
        assert_eq!(local.resolve(a), "four");
        assert_eq!(local.resolve(b), "crosses-the-cap");
        assert!(local.stats().over_soft_cap);
        assert_eq!(local.over_cap_interns(), 1);
        let _ = local.intern("and-another-one");
        assert_eq!(local.over_cap_interns(), 2);
    }

    #[test]
    fn zero_cap_disables_the_warning() {
        let local = Interner::new();
        local.set_soft_cap_bytes(0);
        let _ = local.intern("whatever length this is");
        assert!(!local.stats().over_soft_cap);
        assert_eq!(local.over_cap_interns(), 0);
    }

    #[test]
    fn stats_bytes_track_interned_text() {
        let local = Interner::new();
        let _ = local.intern("abcde");
        let _ = local.intern("xyz");
        let _ = local.intern("abcde"); // duplicate: no growth
        let stats = local.stats();
        assert_eq!(stats.bytes, 8);
        assert_eq!(stats.soft_cap_bytes, DEFAULT_INTERN_SOFT_CAP_BYTES);
    }

    #[test]
    fn private_interner_is_independent() {
        let local = Interner::new();
        let a = local.intern("only-local");
        assert_eq!(local.resolve(a), "only-local");
        assert_eq!(local.stats().symbols, 1);
        assert_eq!(local.stats().preseeded, 0);
    }
}
