//! Noun-phrase chunking.
//!
//! The dependency parser and the information-element extraction step both
//! operate on base noun phrases: maximal `(DT|PRP$|JJ|CD|NN*)* NN*` spans
//! whose head is the final nominal token.

use crate::intern::Symbol;
use crate::token::{Tag, Token};

/// A base noun phrase: token span `[start, end)` with `head` index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NounPhrase {
    /// Index of the first token of the phrase.
    pub start: usize,
    /// One past the index of the last token.
    pub end: usize,
    /// Index of the head (rightmost nominal) token.
    pub head: usize,
}

impl NounPhrase {
    /// Returns the phrase text joined with single spaces.
    pub fn text(&self, tokens: &[Token]) -> String {
        tokens[self.start..self.end].iter().map(|t| t.lower()).collect::<Vec<_>>().join(" ")
    }

    /// Returns the phrase text without leading determiners/possessives.
    ///
    /// "your personal information" → "personal information".
    pub fn content_text(&self, tokens: &[Token]) -> String {
        let mut s = self.start;
        while s < self.head && matches!(tokens[s].tag, Tag::Det | Tag::PronounPoss) {
            s += 1;
        }
        tokens[s..self.end].iter().map(|t| t.lower()).collect::<Vec<_>>().join(" ")
    }

    /// The phrase's content as a single interned symbol.
    ///
    /// Single-token phrases reuse the token's own `lower` symbol; multi-word
    /// phrases intern the joined content text once and hit the interner's
    /// read path on every later occurrence.
    pub fn content_symbol(&self, tokens: &[Token]) -> Symbol {
        let mut s = self.start;
        while s < self.head && matches!(tokens[s].tag, Tag::Det | Tag::PronounPoss) {
            s += 1;
        }
        if self.end - s == 1 {
            return tokens[s].lower;
        }
        crate::intern::intern(&self.content_text(tokens))
    }

    /// Returns `true` if `idx` lies within the phrase.
    pub fn contains(&self, idx: usize) -> bool {
        idx >= self.start && idx < self.end
    }
}

/// Chunks tagged tokens into base noun phrases.
///
/// A chunk starts at a determiner, possessive pronoun, adjective, number or
/// nominal, and extends while tokens are NP-interior, ending at the last
/// nominal seen. Standalone pronouns form single-token chunks.
///
/// # Examples
///
/// ```
/// use ppchecker_nlp::{tagger::tag_str, chunk::chunk_nps};
/// let toks = tag_str("we will collect your precise location data");
/// let nps = chunk_nps(&toks);
/// // "we" and "your precise location data"
/// assert_eq!(nps.len(), 2);
/// assert_eq!(nps[1].text(&toks), "your precise location data");
/// ```
pub fn chunk_nps(tokens: &[Token]) -> Vec<NounPhrase> {
    let mut chunks = Vec::new();
    let n = tokens.len();
    let mut i = 0;
    while i < n {
        let t = &tokens[i];
        if t.tag == Tag::Pronoun {
            chunks.push(NounPhrase { start: i, end: i + 1, head: i });
            i += 1;
            continue;
        }
        if t.tag.is_np_interior() && t.tag != Tag::VerbGerund {
            let start = i;
            let mut last_nominal: Option<usize> = None;
            let mut j = i;
            while j < n && tokens[j].tag.is_np_interior() {
                if matches!(tokens[j].tag, Tag::Noun | Tag::NounPlural | Tag::NounProper) {
                    last_nominal = Some(j);
                }
                j += 1;
            }
            if let Some(head) = last_nominal {
                chunks.push(NounPhrase { start, end: head + 1, head });
                i = head + 1;
                continue;
            }
            i = j.max(i + 1);
            continue;
        }
        i += 1;
    }
    chunks
}

/// Finds the chunk containing token `idx`, if any.
pub fn chunk_of(chunks: &[NounPhrase], idx: usize) -> Option<&NounPhrase> {
    chunks.iter().find(|c| c.contains(idx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tagger::tag_str;

    #[test]
    fn chunks_subject_and_object() {
        let toks = tag_str("we will collect your location");
        let nps = chunk_nps(&toks);
        assert_eq!(nps.len(), 2);
        assert_eq!(nps[0].text(&toks), "we");
        assert_eq!(nps[1].text(&toks), "your location");
        assert_eq!(toks[nps[1].head].lower(), "location");
    }

    #[test]
    fn enumerated_nps_are_separate_chunks() {
        let toks = tag_str("we collect your name , your ip address and your device id");
        let nps = chunk_nps(&toks);
        let texts: Vec<String> = nps.iter().map(|c| c.text(&toks)).collect();
        assert!(texts.contains(&"your name".to_string()));
        assert!(texts.contains(&"your ip address".to_string()));
        assert!(texts.contains(&"your device id".to_string()));
    }

    #[test]
    fn content_text_strips_determiners() {
        let toks = tag_str("the personal information");
        let nps = chunk_nps(&toks);
        assert_eq!(nps[0].content_text(&toks), "personal information");
    }

    #[test]
    fn no_chunks_in_verb_only_sentence() {
        let toks = tag_str("collect and store");
        let nps = chunk_nps(&toks);
        assert!(nps.is_empty());
    }

    #[test]
    fn content_symbol_matches_content_text() {
        let toks = tag_str("we collect your location and the personal information");
        for np in chunk_nps(&toks) {
            assert_eq!(np.content_symbol(&toks).as_str(), np.content_text(&toks));
        }
    }

    #[test]
    fn single_token_content_reuses_token_symbol() {
        let toks = tag_str("your location");
        let nps = chunk_nps(&toks);
        assert_eq!(nps[0].content_symbol(&toks), toks[nps[0].head].lower);
    }

    #[test]
    fn head_is_last_nominal() {
        let toks = tag_str("your real phone number");
        let nps = chunk_nps(&toks);
        assert_eq!(toks[nps[0].head].lower(), "number");
    }
}
