//! Shallow phrase-structure rendering (the parse-tree half of the paper's
//! Fig. 6).
//!
//! The Stanford Parser emits both a constituency tree and typed
//! dependencies; PPChecker's algorithms consume only the dependencies,
//! but the tree view is invaluable for debugging pattern matches. This
//! module renders the flat chunk/verb-group structure the parser builds
//! as a bracketed tree: `(S (NP we) (VP will provide (NP your
//! information)) ...)`.

use crate::depparse::Parse;
use crate::token::Tag;

/// Renders a bracketed phrase-structure view of a parse.
///
/// # Examples
///
/// ```
/// use ppchecker_nlp::{depparse::parse, tree::to_bracketed};
/// let p = parse("we will collect your location");
/// assert_eq!(
///     to_bracketed(&p),
///     "(S (NP we/PRP) (VP will/MD collect/VB (NP your/PRP$ location/NN)))"
/// );
/// ```
pub fn to_bracketed(parse: &Parse) -> String {
    let n = parse.tokens.len();
    let mut pieces: Vec<String> = Vec::new();
    let mut i = 0;
    while i < n {
        // Verb group containing i?
        if let Some(g) = parse.groups.iter().find(|g| g.start == i) {
            let mut vp = String::from("(VP");
            for k in g.start..g.end {
                vp.push(' ');
                vp.push_str(&leaf(parse, k));
            }
            // Attach the following NP (direct object) inside the VP, as a
            // constituency tree would.
            let mut next = g.end;
            if let Some(chunk) = parse.chunks.iter().find(|c| c.start == g.end) {
                vp.push(' ');
                vp.push_str(&np(parse, chunk.start, chunk.end));
                next = chunk.end;
            }
            vp.push(')');
            pieces.push(vp);
            i = next;
            continue;
        }
        if let Some(chunk) = parse.chunks.iter().find(|c| c.start == i) {
            pieces.push(np(parse, chunk.start, chunk.end));
            i = chunk.end;
            continue;
        }
        let t = &parse.tokens[i];
        if t.tag == Tag::Prep {
            // PP: preposition plus the following NP, if adjacent.
            if let Some(chunk) = parse.chunks.iter().find(|c| c.start == i + 1) {
                pieces.push(format!(
                    "(PP {} {})",
                    leaf(parse, i),
                    np(parse, chunk.start, chunk.end)
                ));
                i = chunk.end;
                continue;
            }
        }
        pieces.push(leaf(parse, i));
        i += 1;
    }
    format!("(S {})", pieces.join(" "))
}

fn np(parse: &Parse, start: usize, end: usize) -> String {
    let body: Vec<String> = (start..end).map(|k| leaf(parse, k)).collect();
    format!("(NP {})", body.join(" "))
}

fn leaf(parse: &Parse, i: usize) -> String {
    let t = &parse.tokens[i];
    format!("{}/{}", t.lower, t.tag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depparse::parse;

    #[test]
    fn simple_svo_tree() {
        let p = parse("we will collect your location");
        let t = to_bracketed(&p);
        assert!(t.starts_with("(S (NP we/PRP) (VP"));
        assert!(t.contains("(NP your/PRP$ location/NN)"));
    }

    #[test]
    fn pp_attachment_rendered() {
        let p = parse("we may share your information with advertisers");
        let t = to_bracketed(&p);
        assert!(t.contains("(PP with/IN (NP advertisers/NN"), "{t}");
    }

    #[test]
    fn passive_group_in_one_vp() {
        let p = parse("your location will be collected");
        let t = to_bracketed(&p);
        assert!(t.contains("(VP will/MD be/VBP collected/VBN)"), "{t}");
    }

    #[test]
    fn empty_sentence() {
        let p = parse("");
        assert_eq!(to_bracketed(&p), "(S )");
    }
}
