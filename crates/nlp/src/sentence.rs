//! Sentence segmentation with the enumeration-list repair described in the
//! paper's Step 1.
//!
//! NLTK (used by the paper) splits an enumeration such as
//! `"we will collect the following information: your name; your IP address;
//! your device ID"` into four pieces. PPChecker repairs this by re-joining a
//! fragment onto the previous sentence whenever that sentence ends with `;`
//! or `,` or `:` or the fragment starts with a lowercase letter after a list
//! separator. This module reproduces both the naive split and the repair.

/// Abbreviations that do not end a sentence.
const ABBREVIATIONS: &[&str] = &[
    "e.g", "i.e", "etc", "mr", "mrs", "ms", "dr", "inc", "ltd", "corp", "co", "vs", "no", "v",
    "st", "jr", "sr", "u.s", "u.k",
];

/// Splits raw text into sentences.
///
/// The splitter breaks on `.`, `!` and `?` (not inside known abbreviations
/// or decimal numbers) and on newlines that separate paragraphs, then
/// applies the enumeration repair: a fragment following a sentence that ends
/// in `;`, `,` or `:` is appended to that sentence, matching the paper's
/// fix for NLTK's behaviour on bullet lists.
///
/// # Examples
///
/// ```
/// use ppchecker_nlp::sentence::split_sentences;
/// let text = "We value privacy. We will collect the following: your name; \
///             your IP address; your device ID. Contact us anytime.";
/// let sents = split_sentences(text);
/// assert_eq!(sents.len(), 3);
/// assert!(sents[1].contains("device id"));
/// ```
pub fn split_sentences(text: &str) -> Vec<String> {
    let _span = ppchecker_obs::span!("nlp.split");
    let naive = naive_split(text);
    repair_enumerations(naive)
}

/// The naive NLTK-like split (exposed for testing the repair step).
///
/// Single pass over `char_indices` with one-character lookbehind and
/// lookahead — no `Vec<char>` materialization of the document.
pub fn naive_split(text: &str) -> Vec<String> {
    let mut sentences = Vec::new();
    let mut current = String::new();
    let mut prev: Option<char> = None;
    let mut iter = text.chars().peekable();
    while let Some(c) = iter.next() {
        match c {
            '.' | '!' | '?' => {
                // A dot inside a decimal number, after an abbreviation, or
                // interior to a package name / URL does not end a sentence.
                let next = iter.peek().copied();
                let interior_dot = c == '.'
                    && ((prev.is_some_and(|p| p.is_ascii_digit())
                        && next.is_some_and(|x| x.is_ascii_digit()))
                        || ends_with_abbreviation(&current)
                        || next.is_some_and(|x| x.is_alphanumeric() || x == '/'));
                current.push(c);
                if !interior_dot {
                    flush(&mut sentences, &mut current);
                }
            }
            '\n' => {
                // Paragraph break ends a sentence; single newline is a space.
                if iter.peek() == Some(&'\n') {
                    flush(&mut sentences, &mut current);
                    iter.next();
                    prev = Some('\n');
                    continue;
                } else {
                    current.push(' ');
                }
            }
            _ => current.push(c),
        }
        prev = Some(c);
    }
    flush(&mut sentences, &mut current);
    sentences
}

fn flush(sentences: &mut Vec<String>, current: &mut String) {
    let trimmed = current.trim();
    if !trimmed.is_empty() {
        sentences.push(normalize(trimmed));
    }
    current.clear();
}

/// Lowercases and collapses whitespace, and strips non-ASCII symbols
/// (the paper's Step 1 keeps only English letters and specified punctuation).
///
/// One allocation: ASCII filtering, whitespace collapsing, and
/// lowercasing fold into a single pass (every kept char is ASCII, so
/// per-char `to_ascii_lowercase` equals the Unicode lowering).
fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut pending_space = false;
    for c in s.chars().filter(char::is_ascii) {
        if c.is_whitespace() {
            pending_space = !out.is_empty();
        } else {
            if pending_space {
                out.push(' ');
                pending_space = false;
            }
            out.push(c.to_ascii_lowercase());
        }
    }
    out
}

fn ends_with_abbreviation(current: &str) -> bool {
    // The candidate is the trailing alphanumeric-or-dot run; compare it
    // (minus trailing dots) case-insensitively without allocating.
    let tail_start = current
        .rfind(|c: char| !(c.is_alphanumeric() || c == '.'))
        .map(|i| i + current[i..].chars().next().map_or(1, char::len_utf8))
        .unwrap_or(0);
    let last_word = current[tail_start..].trim_end_matches('.');
    ABBREVIATIONS.iter().any(|a| a.eq_ignore_ascii_case(last_word))
}

/// The paper's repair: if the previous sentence ends with `;`, `,` or `:`,
/// append the current fragment to it.
pub fn repair_enumerations(raw: Vec<String>) -> Vec<String> {
    let mut out: Vec<String> = Vec::with_capacity(raw.len());
    for sent in raw {
        match out.last_mut() {
            Some(prev)
                if prev.trim_end().ends_with(';')
                    || prev.trim_end().ends_with(',')
                    || prev.trim_end().ends_with(':') =>
            {
                prev.push(' ');
                prev.push_str(&sent);
            }
            _ => out.push(sent),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_basic_sentences() {
        let s = split_sentences("First sentence. Second sentence. Third one!");
        assert_eq!(s.len(), 3);
        assert_eq!(s[0], "first sentence.");
    }

    #[test]
    fn keeps_abbreviations_together() {
        let s = split_sentences("We share data with partners, e.g. advertisers. Done.");
        assert_eq!(s.len(), 2);
        assert!(s[0].contains("e.g. advertisers"));
    }

    #[test]
    fn keeps_decimals_together() {
        let s = split_sentences("Version 1.2 is out. Enjoy.");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn enumeration_repair_joins_fragments() {
        // Simulate NLTK splitting a semicolon list into fragments.
        let raw = vec![
            "we will collect the following information: your name;".to_string(),
            "your ip address;".to_string(),
            "your device id.".to_string(),
            "contact us.".to_string(),
        ];
        let repaired = repair_enumerations(raw);
        assert_eq!(repaired.len(), 2);
        assert!(repaired[0].contains("your device id."));
    }

    #[test]
    fn normalizes_to_lowercase_ascii() {
        let s = split_sentences("We collect DATA\u{2122} and cookies.");
        assert_eq!(s[0], "we collect data and cookies.");
    }

    #[test]
    fn paragraph_breaks_split() {
        let s = split_sentences("no trailing period here\n\nanother paragraph.");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn package_names_survive() {
        let s = split_sentences("The app com.example.game is popular. Yes.");
        assert_eq!(s.len(), 2);
        assert!(s[0].contains("com.example.game"));
    }

    #[test]
    fn empty_input() {
        assert!(split_sentences("").is_empty());
    }
}
