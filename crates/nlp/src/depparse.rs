//! A deterministic typed-dependency parser for the privacy-policy register.
//!
//! The paper uses the Stanford Parser and consumes a small set of typed
//! dependencies: `root`, `nsubj`, `nsubjpass`, `dobj`, `aux`, `auxpass`,
//! `neg`, `xcomp`, `advcl`, `mark`, `prep`/`pobj`, `conj`/`cc` and the
//! NP-internal relations. This parser produces exactly those relations with
//! a clause-oriented rule algorithm:
//!
//! 1. chunk base noun phrases;
//! 2. find verb groups (modal/auxiliary/negation/verb runs) and detect
//!    passive voice (a form of *be* governing a past participle);
//! 3. segment subordinate clauses introduced by markers (*if*, *when*,
//!    *unless*, *before*, *upon*, ...);
//! 4. pick the root (main verb of the first main-clause verb group, or the
//!    copular predicate adjective as Stanford does for "we are able to ...");
//! 5. attach subjects, objects, infinitival complements, purpose clauses,
//!    prepositional phrases and coordination.

use crate::chunk::{chunk_nps, NounPhrase};
use crate::intern::{Symbol, SymbolSet};
use crate::lexicon;
use crate::tagger;
use crate::token::{Tag, Token};
use std::fmt;
use std::sync::OnceLock;

/// Negation markers attached with the `neg` relation.
fn is_neg_word(sym: Symbol) -> bool {
    static SET: OnceLock<SymbolSet> = OnceLock::new();
    SET.get_or_init(|| SymbolSet::new(&["not", "n't", "never", "hardly", "rarely", "seldom"]))
        .contains(sym)
}

/// The interned comma symbol (pre-seeded, so this never allocates).
fn comma() -> Symbol {
    static COMMA: OnceLock<Symbol> = OnceLock::new();
    *COMMA.get_or_init(|| crate::intern::Interner::global().intern_static(","))
}

/// Typed-dependency relations (Stanford dependencies subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rel {
    /// Sentence root.
    Root,
    /// Nominal subject.
    Nsubj,
    /// Passive nominal subject.
    NsubjPass,
    /// Direct object.
    Dobj,
    /// Auxiliary.
    Aux,
    /// Passive auxiliary.
    AuxPass,
    /// Negation modifier.
    Neg,
    /// Open clausal complement ("able *to collect*").
    Xcomp,
    /// Adverbial clause ("we use GPS *to get* your location"; "if you ...").
    Advcl,
    /// Clause marker ("*if* you register").
    Mark,
    /// Prepositional modifier (head → preposition).
    Prep,
    /// Object of a preposition (preposition → NP head).
    Pobj,
    /// Coordination (first conjunct → later conjunct).
    Conj,
    /// Coordinating conjunction word.
    Cc,
    /// Determiner.
    Det,
    /// Possessive modifier.
    Poss,
    /// Adjectival modifier.
    Amod,
    /// Anything else.
    Dep,
}

impl fmt::Display for Rel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rel::Root => "root",
            Rel::Nsubj => "nsubj",
            Rel::NsubjPass => "nsubjpass",
            Rel::Dobj => "dobj",
            Rel::Aux => "aux",
            Rel::AuxPass => "auxpass",
            Rel::Neg => "neg",
            Rel::Xcomp => "xcomp",
            Rel::Advcl => "advcl",
            Rel::Mark => "mark",
            Rel::Prep => "prep",
            Rel::Pobj => "pobj",
            Rel::Conj => "conj",
            Rel::Cc => "cc",
            Rel::Det => "det",
            Rel::Poss => "poss",
            Rel::Amod => "amod",
            Rel::Dep => "dep",
        };
        f.write_str(s)
    }
}

/// A single dependency edge `rel(head, dep)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dependency {
    /// Token index of the governor.
    pub head: usize,
    /// Token index of the dependent.
    pub dep: usize,
    /// Relation label.
    pub rel: Rel,
}

/// A contiguous verbal group, e.g. "will not be collected".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerbGroup {
    /// First token of the group.
    pub start: usize,
    /// One past the last token of the group.
    pub end: usize,
    /// The main (content) token: last verb, or the copular predicate
    /// adjective for "be + ADJ" groups.
    pub main: usize,
    /// `true` if the group is passive voice (*be* + past participle).
    pub passive: bool,
    /// `true` if the main token is a copular predicate adjective.
    pub copular: bool,
}

/// The result of parsing one sentence.
#[derive(Debug, Clone)]
pub struct Parse {
    /// Tagged tokens.
    pub tokens: Vec<Token>,
    /// All dependency edges.
    pub deps: Vec<Dependency>,
    /// Index of the root token, if the sentence has a verb.
    pub root: Option<usize>,
    /// Base noun phrases.
    pub chunks: Vec<NounPhrase>,
    /// Verb groups in textual order.
    pub groups: Vec<VerbGroup>,
}

impl Parse {
    /// All dependents of `head` with relation `rel`.
    pub fn dependents(&self, head: usize, rel: Rel) -> Vec<usize> {
        self.deps.iter().filter(|d| d.head == head && d.rel == rel).map(|d| d.dep).collect()
    }

    /// The first dependent of `head` with relation `rel`.
    pub fn dependent(&self, head: usize, rel: Rel) -> Option<usize> {
        self.deps.iter().find(|d| d.head == head && d.rel == rel).map(|d| d.dep)
    }

    /// The governor of `dep` under relation `rel`.
    pub fn governor(&self, dep: usize, rel: Rel) -> Option<usize> {
        self.deps.iter().find(|d| d.dep == dep && d.rel == rel).map(|d| d.head)
    }

    /// Returns `true` if token `idx` has a passive auxiliary.
    pub fn has_auxpass(&self, idx: usize) -> bool {
        self.dependent(idx, Rel::AuxPass).is_some()
    }

    /// The noun-phrase chunk whose head is token `idx`, if any.
    pub fn chunk_headed_by(&self, idx: usize) -> Option<&NounPhrase> {
        self.chunks.iter().find(|c| c.head == idx)
    }

    /// The verb group whose main token is `idx`, if any.
    pub fn group_of_main(&self, idx: usize) -> Option<&VerbGroup> {
        self.groups.iter().find(|g| g.main == idx)
    }

    /// Lemma of token `idx` as text.
    pub fn lemma(&self, idx: usize) -> &'static str {
        self.tokens[idx].lemma()
    }

    /// Lemma of token `idx` as an interned symbol.
    pub fn lemma_sym(&self, idx: usize) -> Symbol {
        self.tokens[idx].lemma
    }

    /// Renders the dependency list like the Stanford "typed dependencies"
    /// output, for debugging.
    pub fn to_dep_string(&self) -> String {
        let mut out = String::new();
        if let Some(r) = self.root {
            out.push_str(&format!("root(ROOT-0, {}-{})\n", self.tokens[r].lower(), r + 1));
        }
        for d in &self.deps {
            out.push_str(&format!(
                "{}({}-{}, {}-{})\n",
                d.rel,
                self.tokens[d.head].lower(),
                d.head + 1,
                self.tokens[d.dep].lower(),
                d.dep + 1
            ));
        }
        out
    }
}

/// Parses a raw sentence string (tokenize → tag → parse).
///
/// # Examples
///
/// ```
/// use ppchecker_nlp::depparse::{parse, Rel};
/// let p = parse("we will provide your information to third party companies");
/// let root = p.root.unwrap();
/// assert_eq!(p.tokens[root].lemma(), "provide");
/// let subj = p.dependent(root, Rel::Nsubj).unwrap();
/// assert_eq!(p.tokens[subj].lower(), "we");
/// let obj = p.dependent(root, Rel::Dobj).unwrap();
/// assert_eq!(p.tokens[obj].lower(), "information");
/// ```
pub fn parse(sentence: &str) -> Parse {
    let tokens = tagger::tag_str(sentence);
    parse_tokens(tokens)
}

/// Parses already-tagged tokens.
pub fn parse_tokens(tokens: Vec<Token>) -> Parse {
    let _span = ppchecker_obs::span!("nlp.depparse");
    let chunks = chunk_nps(&tokens);
    let groups = find_verb_groups(&tokens);
    let sub_spans = subordinate_spans(&tokens);
    let mut deps: Vec<Dependency> = Vec::new();

    // NP-internal edges.
    for c in &chunks {
        for (i, token) in tokens.iter().enumerate().take(c.end).skip(c.start) {
            if i == c.head {
                continue;
            }
            let rel = match token.tag {
                Tag::Det => Rel::Det,
                Tag::PronounPoss => Rel::Poss,
                Tag::Adj | Tag::VerbGerund => Rel::Amod,
                _ => Rel::Dep,
            };
            deps.push(Dependency { head: c.head, dep: i, rel });
        }
    }

    // Root selection: main of the first verb group outside subordinate spans.
    let root_group_idx = groups
        .iter()
        .position(|g| !in_spans(&sub_spans, g.main) && !preceded_by_to(&tokens, g))
        .or_else(|| groups.iter().position(|g| !preceded_by_to(&tokens, g)))
        .or(if groups.is_empty() { None } else { Some(0) });
    let root = root_group_idx.map(|gi| groups[gi].main);

    // Per-group edges: aux / auxpass / neg / subject.
    for g in &groups {
        attach_group_internals(&tokens, g, &mut deps);
        attach_subject(&tokens, &chunks, g, &mut deps);
    }

    // Inter-group edges: xcomp / advcl / conj between verb groups.
    link_groups(&tokens, &groups, &sub_spans, root_group_idx, &mut deps);

    // Post-verbal attachment: objects, PPs, coordination.
    for (gi, g) in groups.iter().enumerate() {
        let limit = groups.get(gi + 1).map(|n| n.start).unwrap_or(tokens.len());
        attach_postverbal(&tokens, &chunks, g, limit, &mut deps);
    }

    // Mark edges for subordinators.
    for (marker, span_end) in &sub_spans {
        if let Some(g) = groups.iter().find(|g| g.main > *marker && g.main < *span_end) {
            deps.push(Dependency { head: g.main, dep: *marker, rel: Rel::Mark });
            if let Some(r) = root {
                if r != g.main
                    && !deps.iter().any(|d| {
                        d.dep == g.main && matches!(d.rel, Rel::Advcl | Rel::Xcomp | Rel::Conj)
                    })
                {
                    deps.push(Dependency { head: r, dep: g.main, rel: Rel::Advcl });
                }
            }
        }
    }

    Parse { tokens, deps, root, chunks, groups }
}

fn preceded_by_to(tokens: &[Token], g: &VerbGroup) -> bool {
    g.start > 0 && tokens[g.start - 1].tag == Tag::To
}

fn in_spans(spans: &[(usize, usize)], idx: usize) -> bool {
    spans.iter().any(|&(m, e)| idx > m && idx < e)
}

/// Subordinate clause spans: `(marker_index, exclusive_end)`.
fn subordinate_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        let is_marker = lexicon::is_subordinator(t.lower)
            && t.tag == Tag::Prep
            // "before/after + NP" is a plain PP, not a clause; require a verb
            // somewhere after the marker and before the span end.
            ;
        if !is_marker {
            continue;
        }
        // Span ends at the next comma at this level, or sentence end.
        let end = tokens[i + 1..]
            .iter()
            .position(|t| t.lower == comma())
            .map(|p| i + 1 + p)
            .unwrap_or(tokens.len());
        // Require a verbal token inside the span for it to be a clause.
        if tokens[i + 1..end].iter().any(|t| t.tag.is_verb()) {
            spans.push((i, end));
        }
    }
    spans
}

/// Finds maximal verbal groups.
fn find_verb_groups(tokens: &[Token]) -> Vec<VerbGroup> {
    let mut groups = Vec::new();
    let n = tokens.len();
    let mut i = 0;
    while i < n {
        let t = &tokens[i];
        let starts = t.tag == Tag::Modal || t.tag.is_verb();
        if !starts {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i;
        let mut last_verb: Option<usize> = None;
        while j < n {
            let tj = &tokens[j];
            if tj.tag == Tag::Modal || tj.tag.is_verb() {
                if tj.tag.is_verb() {
                    last_verb = Some(j);
                }
                j += 1;
            } else if tj.tag == Tag::Adv && j + 1 < n {
                // Allow adverbs inside the group only if more verbal
                // material follows ("will not collect").
                let lookahead = &tokens[j + 1];
                if lookahead.tag == Tag::Modal
                    || lookahead.tag.is_verb()
                    || (lookahead.tag == Tag::Adv && j + 2 < n && tokens[j + 2].tag.is_verb())
                {
                    j += 1;
                } else {
                    break;
                }
            } else {
                break;
            }
        }
        let Some(mut main) = last_verb else {
            i = j.max(i + 1);
            continue;
        };
        // Absorb directly-preceding adverbs ("we never collect ...") so
        // negation analysis sees them as verb modifiers.
        let mut start = start;
        while start > 0 && tokens[start - 1].tag == Tag::Adv {
            start -= 1;
        }
        let mut end = main + 1;
        let mut copular = false;

        // Copular predicate: "be"-form main followed by an adjective
        // ("we are able ...") — the adjective becomes the main token, as in
        // Stanford parses.
        if lexicon::is_be_form(tokens[main].lower) {
            let mut k = main + 1;
            while k < n && tokens[k].tag == Tag::Adv {
                k += 1;
            }
            if k < n && tokens[k].tag == Tag::Adj {
                main = k;
                end = k + 1;
                copular = true;
            }
        }

        // Passive: some "be" form in the group strictly before a past
        // participle main.
        let passive = !copular
            && tokens[main].tag == Tag::VerbPastPart
            && tokens[start..main].iter().any(|t| lexicon::is_be_form(t.lower));

        groups.push(VerbGroup { start, end, main, passive, copular });
        i = end.max(j);
    }
    groups
}

fn attach_group_internals(tokens: &[Token], g: &VerbGroup, deps: &mut Vec<Dependency>) {
    for (i, t) in tokens.iter().enumerate().take(g.end).skip(g.start) {
        if i == g.main {
            continue;
        }
        let rel = if is_neg_word(t.lower) {
            Rel::Neg
        } else if t.tag == Tag::Modal
            || lexicon::is_have_form(t.lower)
            || lexicon::is_do_form(t.lower)
        {
            Rel::Aux
        } else if lexicon::is_be_form(t.lower) {
            if g.passive {
                Rel::AuxPass
            } else {
                Rel::Aux
            }
        } else if t.tag == Tag::Adv {
            Rel::Dep
        } else if t.tag.is_verb() {
            // e.g. "have been collected": "been" under "collected".
            if lexicon::is_be_form(t.lower) && g.passive {
                Rel::AuxPass
            } else {
                Rel::Aux
            }
        } else {
            Rel::Dep
        };
        deps.push(Dependency { head: g.main, dep: i, rel });
    }
}

fn attach_subject(
    tokens: &[Token],
    chunks: &[NounPhrase],
    g: &VerbGroup,
    deps: &mut Vec<Dependency>,
) {
    // Nearest chunk ending at the group start, allowing one adverb or comma
    // in between ("we , however , collect" is out of scope; "we also collect"
    // is handled by the adverb being inside the group).
    let mut pos = g.start;
    let mut slack = 0;
    while pos > 0 && slack < 2 {
        let before = &tokens[pos - 1];
        if before.tag == Tag::Adv || before.lower == comma() {
            pos -= 1;
            slack += 1;
            continue;
        }
        break;
    }
    if pos == 0 {
        return;
    }
    // "to collect ..." infinitives have no local subject.
    if tokens[pos - 1].tag == Tag::To {
        return;
    }
    let Some(chunk) = chunks.iter().find(|c| c.end == pos) else {
        return;
    };
    let rel = if g.passive { Rel::NsubjPass } else { Rel::Nsubj };
    deps.push(Dependency { head: g.main, dep: chunk.head, rel });

    // Coordinated subjects: "your name and your email address will be
    // collected" — walk back over chunks separated only by commas and
    // conjunctions and attach them as conjuncts of the subject head.
    let mut current = chunk;
    while let Some(prev) = chunks.iter().find(|c| {
        c.end <= current.start && {
            tokens[c.end..current.start].iter().all(|t| t.tag == Tag::Conj || t.lower == comma())
                && c.end < current.start
        }
    }) {
        deps.push(Dependency { head: chunk.head, dep: prev.head, rel: Rel::Conj });
        for (off, t) in tokens[prev.end..current.start].iter().enumerate() {
            if t.tag == Tag::Conj {
                deps.push(Dependency { head: chunk.head, dep: prev.end + off, rel: Rel::Cc });
            }
        }
        current = prev;
    }
}

/// Links verb groups with xcomp / advcl / conj.
fn link_groups(
    tokens: &[Token],
    groups: &[VerbGroup],
    sub_spans: &[(usize, usize)],
    root_group_idx: Option<usize>,
    deps: &mut Vec<Dependency>,
) {
    for (gi, g) in groups.iter().enumerate() {
        if Some(gi) == root_group_idx {
            continue;
        }
        // "to V" → complement of nearest previous group in the same clause.
        if preceded_by_to(tokens, g) {
            let Some(prev) =
                groups[..gi].iter().rev().find(|p| same_clause(sub_spans, p.main, g.main))
            else {
                continue;
            };
            // xcomp when the governor is copular ("able to V"), passive
            // ("allowed to V"), or immediately adjacent ("want to V");
            // advcl (purpose clause) when an object intervenes
            // ("use GPS to get your location").
            let gap = &tokens[prev.end..g.start - 1];
            let has_intervening_np = gap.iter().any(|t| t.tag.is_nominal());
            let rel = if prev.copular || prev.passive || !has_intervening_np {
                Rel::Xcomp
            } else {
                Rel::Advcl
            };
            deps.push(Dependency { head: prev.main, dep: g.main, rel });
            continue;
        }
        // "V1 and V2" → conj.
        if let Some(prev) = groups[..gi].last() {
            let gap = &tokens[prev.end..g.start];
            let only_cc = !gap.is_empty()
                && gap
                    .iter()
                    .all(|t| t.tag == Tag::Conj || t.lower == comma() || t.tag == Tag::Adv);
            if only_cc && gap.iter().any(|t| t.tag == Tag::Conj) {
                deps.push(Dependency { head: prev.main, dep: g.main, rel: Rel::Conj });
                for (off, t) in gap.iter().enumerate() {
                    if t.tag == Tag::Conj {
                        deps.push(Dependency {
                            head: prev.main,
                            dep: prev.end + off,
                            rel: Rel::Cc,
                        });
                    }
                }
            }
        }
    }
}

fn same_clause(sub_spans: &[(usize, usize)], a: usize, b: usize) -> bool {
    let clause_of = |i: usize| {
        sub_spans.iter().position(|&(m, e)| i > m && i < e).map(|p| p as isize).unwrap_or(-1)
    };
    clause_of(a) == clause_of(b)
}

/// Attaches objects, prepositional phrases, and NP coordination after a
/// verb group, scanning up to `limit` (the start of the next group).
fn attach_postverbal(
    tokens: &[Token],
    chunks: &[NounPhrase],
    g: &VerbGroup,
    limit: usize,
    deps: &mut Vec<Dependency>,
) {
    let mut i = g.end;
    let mut dobj_head: Option<usize> = None;
    let mut last_np_head: Option<usize> = None;
    let mut pending_prep: Option<usize> = None;
    let mut attach_conj_to: Option<usize> = None;

    while i < limit && i < tokens.len() {
        let t = &tokens[i];
        if t.tag == Tag::To {
            break; // infinitive handled by link_groups
        }
        if lexicon::is_subordinator(t.lower) && t.tag == Tag::Prep {
            break; // constraint clause
        }
        if t.tag == Tag::Prep {
            pending_prep = Some(i);
            deps.push(Dependency { head: g.main, dep: i, rel: Rel::Prep });
            attach_conj_to = None;
            i += 1;
            continue;
        }
        if t.tag == Tag::Conj {
            if let Some(h) = attach_conj_to {
                deps.push(Dependency { head: h, dep: i, rel: Rel::Cc });
            }
            i += 1;
            continue;
        }
        if let Some(chunk) = chunks.iter().find(|c| c.start == i) {
            if let Some(p) = pending_prep {
                deps.push(Dependency { head: p, dep: chunk.head, rel: Rel::Pobj });
                pending_prep = None;
                attach_conj_to = Some(chunk.head);
                last_np_head = Some(chunk.head);
            } else if dobj_head.is_none() && last_np_head.is_none() {
                if !g.passive && !g.copular {
                    deps.push(Dependency { head: g.main, dep: chunk.head, rel: Rel::Dobj });
                    dobj_head = Some(chunk.head);
                    attach_conj_to = Some(chunk.head);
                } else {
                    deps.push(Dependency { head: g.main, dep: chunk.head, rel: Rel::Dep });
                }
                last_np_head = Some(chunk.head);
            } else if let Some(first) = attach_conj_to {
                // Coordinated NP: conj back to the first conjunct.
                deps.push(Dependency { head: first, dep: chunk.head, rel: Rel::Conj });
                last_np_head = Some(chunk.head);
            }
            i = chunk.end;
            continue;
        }
        if t.lower == comma() {
            i += 1;
            continue;
        }
        // Anything else (adjective without noun, adverb, punctuation) —
        // skip without resetting coordination state for punctuation.
        if t.tag != Tag::Punct {
            attach_conj_to = attach_conj_to.take();
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_svo() {
        let p = parse("we will collect your location");
        let r = p.root.unwrap();
        assert_eq!(p.tokens[r].lemma(), "collect");
        assert_eq!(p.tokens[p.dependent(r, Rel::Nsubj).unwrap()].lower(), "we");
        assert_eq!(p.tokens[p.dependent(r, Rel::Dobj).unwrap()].lower(), "location");
        assert!(p.dependent(r, Rel::Aux).is_some());
    }

    #[test]
    fn passive_voice() {
        let p = parse("your personal information will be used");
        let r = p.root.unwrap();
        assert_eq!(p.tokens[r].lemma(), "use");
        assert!(p.has_auxpass(r));
        let subj = p.dependent(r, Rel::NsubjPass).unwrap();
        assert_eq!(p.tokens[subj].lower(), "information");
    }

    #[test]
    fn negation_edge() {
        let p = parse("we will not collect your contacts");
        let r = p.root.unwrap();
        assert!(p.dependent(r, Rel::Neg).is_some());
    }

    #[test]
    fn contraction_negation() {
        let p = parse("we don't sell your data");
        let r = p.root.unwrap();
        assert_eq!(p.tokens[r].lemma(), "sell");
        assert!(p.dependent(r, Rel::Neg).is_some());
    }

    #[test]
    fn able_to_collect_is_copular_xcomp() {
        let p = parse("we are able to collect location information");
        let r = p.root.unwrap();
        assert_eq!(p.tokens[r].lower(), "able");
        let x = p.dependent(r, Rel::Xcomp).unwrap();
        assert_eq!(p.tokens[x].lemma(), "collect");
        let obj = p.dependent(x, Rel::Dobj).unwrap();
        assert_eq!(p.tokens[obj].lower(), "information");
    }

    #[test]
    fn allowed_to_access_is_passive_xcomp() {
        let p = parse("we are allowed to access your personal information");
        let r = p.root.unwrap();
        assert_eq!(p.tokens[r].lemma(), "allow");
        assert!(p.has_auxpass(r));
        let x = p.dependent(r, Rel::Xcomp).unwrap();
        assert_eq!(p.tokens[x].lemma(), "access");
    }

    #[test]
    fn purpose_clause_is_advcl() {
        let p = parse("we use gps to get your location");
        let r = p.root.unwrap();
        assert_eq!(p.tokens[r].lemma(), "use");
        let a = p.dependent(r, Rel::Advcl).unwrap();
        assert_eq!(p.tokens[a].lemma(), "get");
    }

    #[test]
    fn prepositional_phrase() {
        let p = parse("we will provide your information to third party companies");
        let r = p.root.unwrap();
        let prep = p.dependents(r, Rel::Prep).into_iter().find(|&i| p.tokens[i].lower() == "to");
        // "to" before an NP is tagged Prep? Our lexicon tags "to" as To, so
        // the disclose target is reached via the dobj; check dobj instead.
        let obj = p.dependent(r, Rel::Dobj).unwrap();
        assert_eq!(p.tokens[obj].lower(), "information");
        let _ = prep;
    }

    #[test]
    fn with_preposition_attaches_pobj() {
        let p = parse("we may share your information with advertisers");
        let r = p.root.unwrap();
        let prep = p.dependent(r, Rel::Prep).unwrap();
        assert_eq!(p.tokens[prep].lower(), "with");
        let pobj = p.dependent(prep, Rel::Pobj).unwrap();
        assert_eq!(p.tokens[pobj].lower(), "advertisers");
    }

    #[test]
    fn coordinated_objects() {
        let p = parse("we will not store your real phone number , name and contacts");
        let r = p.root.unwrap();
        let obj = p.dependent(r, Rel::Dobj).unwrap();
        assert_eq!(p.tokens[obj].lower(), "number");
        let conjs = p.dependents(obj, Rel::Conj);
        let words: Vec<&str> = conjs.iter().map(|&i| p.tokens[i].lower()).collect();
        assert!(words.contains(&"name"));
        assert!(words.contains(&"contacts"));
    }

    #[test]
    fn leading_conditional_clause() {
        let p = parse("if you register an account , we will collect your email address");
        let r = p.root.unwrap();
        assert_eq!(p.tokens[r].lemma(), "collect");
        let advcl = p.dependent(r, Rel::Advcl).unwrap();
        assert_eq!(p.tokens[advcl].lemma(), "register");
        let mark = p.dependent(advcl, Rel::Mark).unwrap();
        assert_eq!(p.tokens[mark].lower(), "if");
    }

    #[test]
    fn trailing_when_clause() {
        let p = parse("we collect usage data when you use the service");
        let r = p.root.unwrap();
        assert_eq!(p.tokens[r].lemma(), "collect");
        let advcl = p.dependents(r, Rel::Advcl).into_iter().find(|&i| p.tokens[i].lemma() == "use");
        assert!(advcl.is_some());
    }

    #[test]
    fn negative_subject_parse() {
        let p = parse("nothing will be collected");
        let r = p.root.unwrap();
        assert_eq!(p.tokens[r].lemma(), "collect");
        let subj = p.dependent(r, Rel::NsubjPass).unwrap();
        assert_eq!(p.tokens[subj].lower(), "nothing");
    }

    #[test]
    fn coordinated_verbs() {
        let p = parse("we collect and store your location");
        let r = p.root.unwrap();
        assert_eq!(p.tokens[r].lemma(), "collect");
        let conj = p.dependent(r, Rel::Conj).unwrap();
        assert_eq!(p.tokens[conj].lemma(), "store");
    }

    #[test]
    fn verbless_sentence_has_no_root() {
        let p = parse("privacy policy");
        assert!(p.root.is_none());
    }

    #[test]
    fn dep_string_renders() {
        let p = parse("we collect data");
        let s = p.to_dep_string();
        assert!(s.contains("root(ROOT-0, collect-2)"));
        assert!(s.contains("nsubj(collect-2, we-1)"));
    }

    #[test]
    fn passive_by_agent() {
        let p = parse("your location will be collected by us");
        let r = p.root.unwrap();
        assert!(p.has_auxpass(r));
        let prep = p.dependent(r, Rel::Prep).unwrap();
        assert_eq!(p.tokens[prep].lower(), "by");
        let agent = p.dependent(prep, Rel::Pobj).unwrap();
        assert_eq!(p.tokens[agent].lower(), "us");
    }
}

#[cfg(test)]
mod construction_tests {
    use super::*;

    #[test]
    fn conjoined_main_clauses_take_first_root() {
        let p = parse("we collect your location and we store your contacts");
        let r = p.root.unwrap();
        assert_eq!(p.tokens[r].lemma(), "collect");
    }

    #[test]
    fn double_negative_aux_chain() {
        let p = parse("we will not be collecting your location");
        let r = p.root.unwrap();
        assert_eq!(p.tokens[r].lemma(), "collect");
        assert!(p.dependent(r, Rel::Neg).is_some());
    }

    #[test]
    fn have_been_collected_is_passive() {
        let p = parse("your contacts have been collected");
        let r = p.root.unwrap();
        assert_eq!(p.tokens[r].lemma(), "collect");
        assert!(p.has_auxpass(r));
    }

    #[test]
    fn unless_clause_is_pre_condition_marker() {
        let p = parse("we do not share your data unless you consent");
        let r = p.root.unwrap();
        let advcl = p.dependent(r, Rel::Advcl).expect("unless-clause attaches");
        let mark = p.dependent(advcl, Rel::Mark).unwrap();
        assert_eq!(p.tokens[mark].lower(), "unless");
    }

    #[test]
    fn multiple_prepositional_phrases() {
        let p = parse("we share your data with partners for advertising");
        let r = p.root.unwrap();
        let preps = p.dependents(r, Rel::Prep);
        assert!(preps.len() >= 2, "{}", p.to_dep_string());
    }

    #[test]
    fn sentence_of_only_punctuation() {
        let p = parse("... !!! ,,,");
        assert!(p.root.is_none());
        assert!(p.deps.is_empty());
    }

    #[test]
    fn groups_are_ordered_and_disjoint() {
        let p = parse("if you register an account , we will collect and store your email");
        for w in p.groups.windows(2) {
            assert!(w[0].end <= w[1].start);
        }
    }

    #[test]
    fn chunk_helpers_work() {
        let p = parse("we collect your location data");
        let obj = p.dependent(p.root.unwrap(), Rel::Dobj).unwrap();
        let chunk = p.chunk_headed_by(obj).unwrap();
        assert_eq!(chunk.content_text(&p.tokens), "location data");
        assert!(p.group_of_main(p.root.unwrap()).is_some());
    }
}
