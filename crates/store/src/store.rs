//! The on-disk store: sharded, versioned, atomic, corruption-tolerant.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::content_hash;

/// Magic bytes opening every record file.
const MAGIC: &[u8; 4] = b"PPS1";

/// Store-wide format version, bumped only when the header layout changes.
const FORMAT_VERSION: u32 = 1;

/// The kinds of artifact the store holds. Each kind gets its own
/// directory and its own schema version, so evolving one codec never
/// invalidates the others.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordKind {
    /// A parsed policy (`PolicyAnalysis` encoding), keyed by the
    /// content hash of the policy HTML.
    Policy,
    /// A library taint summary (`LibSummary` encoding), keyed by
    /// `stable_hash_classes` of the library's classes.
    LibSummary,
    /// A full per-app problem report, keyed by the combined hash of the
    /// app's inputs and the checker configuration.
    Report,
}

impl RecordKind {
    /// Every kind, for iteration in stats and index rendering.
    pub const ALL: [RecordKind; 3] =
        [RecordKind::Policy, RecordKind::LibSummary, RecordKind::Report];

    /// Directory name under `objects/`.
    pub fn dir(self) -> &'static str {
        match self {
            RecordKind::Policy => "policy",
            RecordKind::LibSummary => "libsum",
            RecordKind::Report => "report",
        }
    }

    /// Per-kind payload schema version. Bump when the artifact's wire
    /// encoding changes; old records then read as misses and are
    /// overwritten on the next save.
    pub fn schema_version(self) -> u32 {
        match self {
            RecordKind::Policy => 1,
            RecordKind::LibSummary => 1,
            RecordKind::Report => 1,
        }
    }

    fn index(self) -> usize {
        match self {
            RecordKind::Policy => 0,
            RecordKind::LibSummary => 1,
            RecordKind::Report => 2,
        }
    }
}

/// Hit/miss/write/corrupt counters for one record kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Loads that returned a valid payload.
    pub hits: u64,
    /// Loads that found nothing (or found corruption — also counted in
    /// `corrupt`).
    pub misses: u64,
    /// Records written (including overwrites).
    pub writes: u64,
    /// Loads that found a record but rejected it (bad magic, stale
    /// version, checksum mismatch, truncation).
    pub corrupt: u64,
}

impl StoreStats {
    /// Fraction of loads served from disk, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Element-wise difference, for before/after deltas in metrics.
    pub fn delta_since(&self, earlier: &StoreStats) -> StoreStats {
        StoreStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            writes: self.writes - earlier.writes,
            corrupt: self.corrupt - earlier.corrupt,
        }
    }
}

#[derive(Debug, Default)]
struct KindCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    corrupt: AtomicU64,
}

impl KindCounters {
    fn snapshot(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
        }
    }
}

/// Anything that can hold artifact bytes by `(kind, key)`. The on-disk
/// [`Store`] is the real implementation; tests substitute in-memory
/// tiers. Object-safe so caches can hold `Arc<dyn ArtifactTier>` (the
/// `Debug` bound keeps those holders derivable).
pub trait ArtifactTier: Send + Sync + std::fmt::Debug {
    /// Fetches the payload for `key`, or `None` on miss *or* corruption
    /// — the caller recomputes either way.
    fn load(&self, kind: RecordKind, key: u64) -> Option<Vec<u8>>;

    /// Persists the payload for `key`. Failures are swallowed: a store
    /// that cannot write degrades to a cache miss on the next run, it
    /// never fails the analysis.
    fn save(&self, kind: RecordKind, key: u64, payload: &[u8]);
}

/// The persistent artifact store. Cheap to clone behind an `Arc`; all
/// methods take `&self` and are safe to call from many threads (writes
/// are atomic via tmp+rename, counters are atomics).
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    tmp_seq: AtomicU64,
    counters: [KindCounters; 3],
}

impl Store {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns `io::Error` when the directory tree cannot be created —
    /// the only failure the store ever raises; everything after open
    /// degrades softly.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<Store> {
        let root = root.into();
        fs::create_dir_all(root.join("tmp"))?;
        for kind in RecordKind::ALL {
            fs::create_dir_all(root.join("objects").join(kind.dir()))?;
        }
        let store = Store { root, tmp_seq: AtomicU64::new(0), counters: Default::default() };
        store.write_index();
        Ok(store)
    }

    /// The directory this store lives in.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Counter snapshot for one kind.
    pub fn stats(&self, kind: RecordKind) -> StoreStats {
        self.counters[kind.index()].snapshot()
    }

    /// Number of records currently on disk for `kind` (walks the shard
    /// directories; used by the index file and tests, not hot paths).
    pub fn records_on_disk(&self, kind: RecordKind) -> usize {
        let dir = self.root.join("objects").join(kind.dir());
        let mut n = 0;
        let Ok(shards) = fs::read_dir(&dir) else {
            return 0;
        };
        for shard in shards.flatten() {
            if let Ok(entries) = fs::read_dir(shard.path()) {
                n += entries
                    .flatten()
                    .filter(|e| e.path().extension().is_some_and(|x| x == "rec"))
                    .count();
            }
        }
        n
    }

    fn record_path(&self, kind: RecordKind, key: u64) -> PathBuf {
        self.root
            .join("objects")
            .join(kind.dir())
            .join(format!("{:02x}", key & 0xff))
            .join(format!("{key:016x}.rec"))
    }

    /// Encodes the record file: magic, format version, kind schema
    /// version, key, payload length, payload checksum, payload.
    fn encode_record(kind: RecordKind, key: u64, payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(32 + payload.len());
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf.extend_from_slice(&kind.schema_version().to_le_bytes());
        buf.extend_from_slice(&key.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        buf.extend_from_slice(&content_hash(payload).to_le_bytes());
        buf.extend_from_slice(payload);
        buf
    }

    /// Validates a record file and returns its payload, or `None` on any
    /// defect.
    fn decode_record(kind: RecordKind, key: u64, bytes: &[u8]) -> Option<Vec<u8>> {
        const HEADER: usize = 4 + 4 + 4 + 8 + 8 + 8;
        if bytes.len() < HEADER || &bytes[..4] != MAGIC {
            return None;
        }
        let u32_at = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
        let u64_at = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
        if u32_at(4) != FORMAT_VERSION || u32_at(8) != kind.schema_version() {
            return None;
        }
        if u64_at(12) != key {
            return None;
        }
        let len = u64_at(20) as usize;
        let payload = bytes.get(HEADER..)?;
        if payload.len() != len || content_hash(payload) != u64_at(28) {
            return None;
        }
        Some(payload.to_vec())
    }

    /// Best-effort advisory index: format version plus per-kind record
    /// counts. Never read on the hot path; corruption here is harmless.
    fn write_index(&self) {
        let mut text = format!("ppstore format {FORMAT_VERSION}\n");
        for kind in RecordKind::ALL {
            text.push_str(&format!(
                "{} schema {} records {}\n",
                kind.dir(),
                kind.schema_version(),
                self.records_on_disk(kind)
            ));
        }
        let tmp = self.tmp_path();
        if fs::write(&tmp, text).is_ok()
            && fs::rename(&tmp, self.root.join("ppstore.index")).is_err()
        {
            let _ = fs::remove_file(&tmp);
        }
    }

    /// Refreshes the advisory index file (called by long-lived owners at
    /// shutdown; cheap enough to call after any batch).
    pub fn flush_index(&self) {
        self.write_index();
    }

    fn tmp_path(&self) -> PathBuf {
        let seq = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        self.root.join("tmp").join(format!("{}-{seq}.part", std::process::id()))
    }
}

impl ArtifactTier for Store {
    fn load(&self, kind: RecordKind, key: u64) -> Option<Vec<u8>> {
        let counters = &self.counters[kind.index()];
        let path = self.record_path(kind, key);
        match fs::read(&path) {
            Ok(bytes) => match Store::decode_record(kind, key, &bytes) {
                Some(payload) => {
                    counters.hits.fetch_add(1, Ordering::Relaxed);
                    Some(payload)
                }
                None => {
                    counters.corrupt.fetch_add(1, Ordering::Relaxed);
                    counters.misses.fetch_add(1, Ordering::Relaxed);
                    None
                }
            },
            Err(_) => {
                counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn save(&self, kind: RecordKind, key: u64, payload: &[u8]) {
        let record = Store::encode_record(kind, key, payload);
        let tmp = self.tmp_path();
        let written = fs::File::create(&tmp).and_then(|mut f| f.write_all(&record)).is_ok();
        let final_path = self.record_path(kind, key);
        let renamed = written
            && final_path.parent().is_some_and(|shard| fs::create_dir_all(shard).is_ok())
            && fs::rename(&tmp, &final_path).is_ok();
        if renamed {
            self.counters[kind.index()].writes.fetch_add(1, Ordering::Relaxed);
        } else {
            let _ = fs::remove_file(&tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ppstore-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip_and_counters() {
        let root = scratch("roundtrip");
        let store = Store::open(&root).unwrap();
        assert_eq!(store.load(RecordKind::Policy, 42), None);
        store.save(RecordKind::Policy, 42, b"payload");
        assert_eq!(store.load(RecordKind::Policy, 42), Some(b"payload".to_vec()));
        // A fresh handle over the same directory sees the record.
        let reopened = Store::open(&root).unwrap();
        assert_eq!(reopened.load(RecordKind::Policy, 42), Some(b"payload".to_vec()));
        let stats = store.stats(RecordKind::Policy);
        assert_eq!((stats.hits, stats.misses, stats.writes, stats.corrupt), (1, 1, 1, 0));
        // Kinds are independent namespaces.
        assert_eq!(store.load(RecordKind::Report, 42), None);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn truncated_record_is_a_miss_and_overwritable() {
        let root = scratch("truncated");
        let store = Store::open(&root).unwrap();
        store.save(RecordKind::LibSummary, 7, b"summary bytes");
        let path = store.record_path(RecordKind::LibSummary, 7);
        let full = fs::read(&path).unwrap();
        for cut in [0, 3, 12, full.len() - 1] {
            fs::write(&path, &full[..cut]).unwrap();
            assert_eq!(store.load(RecordKind::LibSummary, 7), None, "cut at {cut}");
        }
        // Recompute-and-overwrite restores service.
        store.save(RecordKind::LibSummary, 7, b"summary bytes");
        assert_eq!(store.load(RecordKind::LibSummary, 7), Some(b"summary bytes".to_vec()));
        assert!(store.stats(RecordKind::LibSummary).corrupt >= 4);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn bad_version_magic_and_checksum_rejected() {
        let root = scratch("versions");
        let store = Store::open(&root).unwrap();
        store.save(RecordKind::Report, 9, b"report");
        let path = store.record_path(RecordKind::Report, 9);
        let pristine = fs::read(&path).unwrap();

        let mut bad_magic = pristine.clone();
        bad_magic[0] = b'X';
        fs::write(&path, &bad_magic).unwrap();
        assert_eq!(store.load(RecordKind::Report, 9), None);

        let mut bad_version = pristine.clone();
        bad_version[4] = 0xEE; // format version
        fs::write(&path, &bad_version).unwrap();
        assert_eq!(store.load(RecordKind::Report, 9), None);

        let mut bad_schema = pristine.clone();
        bad_schema[8] = 0xEE; // kind schema version
        fs::write(&path, &bad_schema).unwrap();
        assert_eq!(store.load(RecordKind::Report, 9), None);

        let mut bad_payload = pristine.clone();
        let last = bad_payload.len() - 1;
        bad_payload[last] ^= 0xFF; // checksum now mismatches
        fs::write(&path, &bad_payload).unwrap();
        assert_eq!(store.load(RecordKind::Report, 9), None);

        fs::write(&path, &pristine).unwrap();
        assert_eq!(store.load(RecordKind::Report, 9), Some(b"report".to_vec()));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn partial_tmp_file_never_shadows_records() {
        let root = scratch("tmpfile");
        let store = Store::open(&root).unwrap();
        // Simulate a killed writer: garbage left in tmp/.
        fs::write(root.join("tmp").join("999-0.part"), b"half a record").unwrap();
        assert_eq!(store.load(RecordKind::Policy, 1), None);
        store.save(RecordKind::Policy, 1, b"fresh");
        assert_eq!(store.load(RecordKind::Policy, 1), Some(b"fresh".to_vec()));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn key_mismatch_rejected() {
        // A record copied to the wrong path (or a key collision bug)
        // must not serve the wrong payload.
        let root = scratch("keymismatch");
        let store = Store::open(&root).unwrap();
        store.save(RecordKind::Policy, 5, b"five");
        let five = store.record_path(RecordKind::Policy, 5);
        let six = store.record_path(RecordKind::Policy, 6);
        fs::create_dir_all(six.parent().unwrap()).unwrap();
        fs::copy(&five, &six).unwrap();
        assert_eq!(store.load(RecordKind::Policy, 6), None);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn index_file_reflects_record_counts() {
        let root = scratch("index");
        let store = Store::open(&root).unwrap();
        store.save(RecordKind::Policy, 1, b"a");
        store.save(RecordKind::Policy, 2, b"b");
        store.save(RecordKind::Report, 3, b"c");
        store.flush_index();
        let text = fs::read_to_string(root.join("ppstore.index")).unwrap();
        assert!(text.contains("policy schema 1 records 2"), "{text}");
        assert!(text.contains("report schema 1 records 1"), "{text}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn concurrent_saves_and_loads_are_safe() {
        let root = scratch("concurrent");
        let store = std::sync::Arc::new(Store::open(&root).unwrap());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let store = std::sync::Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..50u64 {
                        let key = i % 4; // deliberate contention
                        store.save(RecordKind::LibSummary, key, format!("v{t}").as_bytes());
                        if let Some(bytes) = store.load(RecordKind::LibSummary, key) {
                            // Whatever wins the race must be a complete record.
                            assert!(bytes.starts_with(b"v"), "torn read: {bytes:?}");
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let _ = fs::remove_dir_all(&root);
    }
}
