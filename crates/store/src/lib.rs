//! # ppchecker-store
//!
//! The persistent, content-addressed artifact store behind incremental
//! re-analysis.
//!
//! Every expensive artifact the pipeline derives — the parsed policy of
//! one HTML document, the taint summary of one embedded library, the
//! full problem report of one app — is a pure function of some input
//! bytes. This crate persists those artifacts on disk keyed by the
//! content hash of their inputs, so a re-run over an updated corpus only
//! pays for what actually changed: unchanged apps replay their stored
//! report, unchanged policies skip the NLP pipeline, unchanged libs skip
//! the taint kernel.
//!
//! The store is deliberately dependency-free (std only) and sits at the
//! bottom of the workspace graph: `ppchecker-policy`, `ppchecker-static`,
//! `ppchecker-core`, and `ppchecker-engine` all encode their artifacts
//! through [`wire`] and move the bytes through a [`Store`] (or any other
//! [`ArtifactTier`]).
//!
//! ## On-disk format
//!
//! ```text
//! <root>/
//!   ppstore.index            # advisory: format version + per-kind counts
//!   tmp/                     # in-flight writes (unique names, renamed in)
//!   objects/<kind>/<shard>/<key>.rec
//! ```
//!
//! `<kind>` is one directory per [`RecordKind`], `<shard>` the low byte
//! of the key in hex (256-way fan-out so no directory grows unbounded),
//! `<key>` the full 16-hex-digit content hash. Each record carries a
//! versioned header and a payload checksum; *any* defect — truncation, a
//! bad magic, a stale version, a checksum mismatch, a half-written tmp
//! file left by a killed process — makes the load report a miss so the
//! caller recomputes and overwrites. Corruption can cost time, never
//! correctness.
//!
//! Writes go to `tmp/` under a unique name and `rename(2)` into place,
//! so concurrent writers and crashes leave either the old record, the
//! new record, or garbage in `tmp/` — never a torn record at the final
//! path.

pub mod store;
pub mod wire;

pub use store::{ArtifactTier, RecordKind, Store, StoreStats};
pub use wire::{WireError, WireReader, WireWriter};

/// The canonical content hash for store keys: FNV-1a folded over 8-byte
/// little-endian chunks with a length prefix, identical across runs and
/// platforms. Callers hash each input (policy HTML, description,
/// manifest text) with this and combine with [`combine_hashes`].
pub fn content_hash(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut word = |w: u64| {
        h ^= w;
        h = h.wrapping_mul(PRIME);
    };
    word(bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        word(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut buf = [0u8; 8];
        buf[..rem.len()].copy_from_slice(rem);
        word(u64::from_le_bytes(buf));
    }
    h ^ (h >> 32)
}

/// Combines several content hashes into one composite key (order
/// matters: `combine_hashes(&[a, b]) != combine_hashes(&[b, a])`).
pub fn combine_hashes(parts: &[u64]) -> u64 {
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &part in parts {
        h ^= part;
        h = h.wrapping_mul(PRIME);
    }
    h ^ (h >> 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_hash_is_stable_and_length_aware() {
        assert_eq!(content_hash(b"hello"), content_hash(b"hello"));
        assert_ne!(content_hash(b"hello"), content_hash(b"hello\0"));
        assert_ne!(content_hash(b""), content_hash(b"\0"));
        assert_ne!(content_hash(b"ab"), content_hash(b"ba"));
    }

    #[test]
    fn combine_is_order_sensitive() {
        let a = content_hash(b"a");
        let b = content_hash(b"b");
        assert_ne!(combine_hashes(&[a, b]), combine_hashes(&[b, a]));
        assert_eq!(combine_hashes(&[a, b]), combine_hashes(&[a, b]));
        assert_ne!(combine_hashes(&[a]), combine_hashes(&[a, 0]));
    }
}
