//! Length-prefixed binary framing for store payloads.
//!
//! Every artifact codec in the workspace (parsed policies, lib taint
//! summaries, app reports) serializes through this one pair of types, so
//! the framing rules live in exactly one place: little-endian fixed-width
//! integers, `u32` length prefixes on strings and sequences, and a
//! reader that never panics — every decode defect surfaces as a
//! [`WireError`] the caller converts into "recompute".

use std::fmt;

/// A decode failure. Deliberately coarse: the store's contract is that
/// *any* defect means recompute-and-overwrite, so callers only ever need
/// the message for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

/// Serializes values into a growing byte buffer.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        WireWriter::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends an `Option<&str>` (presence byte + string).
    pub fn opt_str(&mut self, s: Option<&str>) {
        match s {
            Some(s) => {
                self.bool(true);
                self.str(s);
            }
            None => self.bool(false),
        }
    }

    /// Appends a sequence length (callers then append the items).
    pub fn seq(&mut self, len: usize) {
        self.u32(len as u32);
    }
}

/// Reads values back out of an encoded buffer.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// `true` when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| WireError(format!("truncated: wanted {n} bytes at {}", self.pos)))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a bool; any byte other than 0/1 is a defect.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation or a non-boolean byte.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError(format!("bad bool byte {other}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation or invalid UTF-8.
    pub fn str(&mut self) -> Result<&'a str, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|e| WireError(format!("invalid utf-8: {e}")))
    }

    /// Reads an `Option<&str>`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation or invalid UTF-8.
    pub fn opt_str(&mut self) -> Result<Option<&'a str>, WireError> {
        if self.bool()? {
            Ok(Some(self.str()?))
        } else {
            Ok(None)
        }
    }

    /// Reads a sequence length, bounded so a corrupt length prefix can't
    /// drive a huge allocation.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation or an implausible length.
    pub fn seq(&mut self) -> Result<usize, WireError> {
        let len = self.u32()? as usize;
        // Every element is at least one byte; a length beyond the bytes
        // that remain cannot be honest.
        if len > self.buf.len().saturating_sub(self.pos) {
            return Err(WireError(format!("sequence of {len} exceeds remaining payload")));
        }
        Ok(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_primitives() {
        let mut w = WireWriter::new();
        w.u8(7);
        w.u32(123_456);
        w.u64(u64::MAX - 3);
        w.bool(true);
        w.str("héllo wörld");
        w.opt_str(None);
        w.opt_str(Some("x"));
        w.seq(3);
        for b in [10u8, 20, 30] {
            w.u8(b);
        }
        let bytes = w.into_bytes();

        let mut r = WireReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 123_456);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "héllo wörld");
        assert_eq!(r.opt_str().unwrap(), None);
        assert_eq!(r.opt_str().unwrap(), Some("x"));
        assert_eq!(r.seq().unwrap(), 3);
        assert_eq!(r.u8().unwrap(), 10);
        assert_eq!(r.u8().unwrap(), 20);
        assert_eq!(r.u8().unwrap(), 30);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = WireWriter::new();
        w.str("hello");
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = WireReader::new(&bytes[..cut]);
            assert!(r.str().is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn bad_bool_and_bad_utf8_rejected() {
        let mut r = WireReader::new(&[9]);
        assert!(r.bool().is_err());
        // length 2, invalid UTF-8 bytes
        let bytes = [2, 0, 0, 0, 0xFF, 0xFE];
        let mut r = WireReader::new(&bytes);
        assert!(r.str().is_err());
    }

    #[test]
    fn implausible_sequence_length_rejected() {
        let mut w = WireWriter::new();
        w.u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(r.seq().is_err());
    }
}
