//! Umbrella crate for the PPChecker reproduction workspace.
//!
//! This crate exists to host workspace-level integration tests (`tests/`)
//! and runnable examples (`examples/`). The actual functionality lives in
//! the `ppchecker-*` crates under `crates/`.

pub use ppchecker_apk as apk;
pub use ppchecker_core as core;
pub use ppchecker_corpus as corpus;
pub use ppchecker_desc as desc;
pub use ppchecker_esa as esa;
pub use ppchecker_nlp as nlp;
pub use ppchecker_policy as policy;
pub use ppchecker_static as static_analysis;
